#include "core/bepi.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/check.hpp"
#include "common/fileio.hpp"
#include "common/flightrec.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/sections.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "core/checkpoint.hpp"
#include "core/resilient.hpp"
#include "core/topk.hpp"
#include "engine/mc/mc.hpp"
#include "solver/bicgstab.hpp"
#include "solver/block_gmres.hpp"
#include "solver/gmres.hpp"
#include "sparse/io.hpp"

namespace bepi {

const char* BepiModeName(BepiMode mode) {
  switch (mode) {
    case BepiMode::kBasic:
      return "BePI-B";
    case BepiMode::kSparsified:
      return "BePI-S";
    case BepiMode::kPreconditioned:
      return "BePI";
  }
  return "BePI-?";
}

BepiSolver::BepiSolver(BepiOptions options) : options_(options) {
  effective_hub_ratio_ = options_.hub_ratio > 0.0
                             ? options_.hub_ratio
                             : (options_.mode == BepiMode::kBasic ? 0.001
                                                                  : 0.2);
}

std::string BepiSolver::name() const { return BepiModeName(options_.mode); }

Status BepiSolver::Preprocess(const Graph& g) {
  return Preprocess(g, /*checkpoints=*/nullptr);
}

Status BepiSolver::Preprocess(const Graph& g, CheckpointManager* checkpoints) {
  Timer total_timer;
  TraceSpan preprocess_span("preprocess");
  preprocess_span.Arg("nodes", g.num_nodes());
  preprocess_span.Arg("edges", g.num_edges());
  preprocessed_ = false;

  MemoryBudget budget(options_.memory_budget_bytes);
  DecompositionOptions dopts;
  dopts.restart_prob = options_.restart_prob;
  dopts.hub_ratio = effective_hub_ratio_;
  dopts.hub_selection = options_.hub_selection;
  dopts.cancel = options_.cancel;
  if (checkpoints != nullptr) {
    // Every option that shapes the decomposition goes into the fingerprint
    // tag, so checkpoints from a run with different parameters read as
    // stale and are recomputed instead of resumed.
    std::ostringstream tag;
    tag.precision(17);
    tag << "mode=" << static_cast<int>(options_.mode)
        << " c=" << dopts.restart_prob << " k=" << dopts.hub_ratio
        << " sel=" << static_cast<int>(dopts.hub_selection)
        << " sbmax=" << dopts.slashburn_max_iterations;
    checkpoints->Bind(PreprocessFingerprint(g, tag.str()));
  }
  BEPI_ASSIGN_OR_RETURN(dec_,
                        BuildDecomposition(g, dopts, &budget, checkpoints));

  info_ = BepiPreprocessInfo();
  info_.n1 = dec_.n1;
  info_.n2 = dec_.n2;
  info_.n3 = dec_.n3;
  info_.num_blocks = static_cast<index_t>(dec_.block_sizes.size());
  info_.slashburn_iterations = dec_.slashburn_iterations;
  info_.schur_nnz = dec_.schur.nnz();
  info_.h22_nnz = dec_.h22.nnz();
  info_.product_nnz = dec_.product_nnz;
  info_.reorder_seconds = dec_.reorder_seconds;
  info_.build_seconds = dec_.build_seconds;
  info_.factor_seconds = dec_.factor_seconds;
  info_.schur_seconds = dec_.schur_seconds;
  if (checkpoints != nullptr) {
    info_.checkpoint_seconds = checkpoints->write_seconds();
    info_.checkpoints_written = checkpoints->checkpoints_written();
    info_.checkpoints_resumed = checkpoints->checkpoints_resumed();
  }

  ilu_.reset();
  // The decomposition's checkpoints are durable past this point; honour a
  // pending cancellation before the (unresumable) ILU factorization.
  if (options_.cancel != nullptr && options_.cancel->Expired()) {
    return options_.cancel->ToStatus("preprocess (ilu)");
  }
  if (options_.mode == BepiMode::kPreconditioned && dec_.n2 > 0) {
    Timer ilu_timer;
    TraceSpan ilu_span("preprocess.ilu0");
    ilu_span.Arg("schur_nnz", dec_.schur.nnz());
    // The ILU(0) factors have the same footprint as S (paper Section 3.5).
    BEPI_RETURN_IF_ERROR(
        budget.Charge(dec_.schur.ByteSize(), "ILU(0) factors of S"));
    Result<Ilu0> ilu = Ilu0::Factor(dec_.schur);
    if (ilu.ok()) {
      ilu_ = std::move(ilu).value();
    } else if (options_.enable_fallbacks &&
               ilu.status().code() == StatusCode::kFailedPrecondition) {
      // Breakdown (zero/tiny pivot): degrade to unpreconditioned queries
      // rather than failing preprocessing; the query-phase chain starts at
      // the Jacobi hop.
      BEPI_LOG(Warning) << "ILU(0) breakdown, continuing unpreconditioned: "
                        << ilu.status().ToString();
      info_.ilu_skipped = true;
    } else {
      return ilu.status();
    }
    info_.ilu_seconds = ilu_timer.Seconds();
  }
  inverse_perm_ = InversePermutation(dec_.perm);
  BindQueryKernels(/*from_load=*/false);
  preprocess_seconds_ = total_timer.Seconds();
  preprocessed_ = true;
  return Status::Ok();
}

void BepiSolver::BindQueryKernels(bool from_load) {
  KernelPath requested = GlobalKernelPath();
  if (requested == KernelPath::kAuto && loaded_path_.has_value()) {
    // The model records the path it was preprocessed with; an unforced
    // load honors it (a --kernel/BEPI_KERNEL request still wins).
    requested = *loaded_path_;
  }
  kernels_ = std::make_unique<DecompositionKernels>(
      BindDecompositionKernels(dec_, requested));
  // Bound tables for top-k pruning and eps error propagation: one O(nnz)
  // pass over the back-substitution matrices, negligible next to the
  // decomposition itself and valid until the matrices change.
  topk_tables_ = std::make_unique<TopKBoundTables>(BuildTopKBoundTables(dec_));
  if (!ilu_.has_value()) {
    kernel_schedule_origin_ = "none (no ILU(0) factors)";
  } else if (loaded_lower_.has_value() && loaded_upper_.has_value()) {
    if (!ilu_->AdoptSchedules(std::move(*loaded_lower_),
                              std::move(*loaded_upper_), kernels_->path)) {
      BEPI_LOG(Warning) << "model kernel schedules failed validation "
                        << "against the recomputed ILU(0) pattern; rebuilt";
      kernel_schedule_origin_ = "rebuilt (model schedules failed validation)";
    } else {
      kernel_schedule_origin_ = "model (validated)";
    }
  } else {
    ilu_->EnableKernels(kernels_->path);
    kernel_schedule_origin_ = from_load
                                  ? "rebuilt (model carries no schedules)"
                                  : "built (preprocess)";
  }
  loaded_path_.reset();
  loaded_lower_.reset();
  loaded_upper_.reset();
  BEPI_LOG(Info) << "kernel path " << KernelPathName(kernels_->path) << " ("
                 << kernels_->reason << ")";
  if (MetricsEnabled()) {
    // 1 = compact, 0 = wide; alongside the log line this makes the chosen
    // path observable in scraped metrics.
    MetricsRegistry::Global()
        .GetGauge("model.kernel_path")
        ->Set(kernels_->path == KernelPath::kCompact ? 1.0 : 0.0);
  }
}

Result<Vector> BepiSolver::Query(index_t seed, QueryStats* stats) const {
  return Query(seed, stats, /*workspace=*/nullptr);
}

Result<Vector> BepiSolver::Query(index_t seed, QueryStats* stats,
                                 GmresWorkspace* workspace) const {
  return Query(seed, stats, workspace, QueryControl());
}

Result<Vector> BepiSolver::Query(index_t seed, QueryStats* stats,
                                 GmresWorkspace* workspace,
                                 const QueryControl& control) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= dec_.n) {
    return Status::OutOfRange("seed out of range");
  }
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2, n3 = dec_.n3;

  // Partitioned starting vector: c*q has a single entry at the reordered
  // seed position (Algorithm 4, lines 1-2).
  const index_t pos = dec_.perm[static_cast<std::size_t>(seed)];
  Vector cq1(static_cast<std::size_t>(n1), 0.0);
  Vector cq2(static_cast<std::size_t>(n2), 0.0);
  Vector cq3(static_cast<std::size_t>(n3), 0.0);
  if (pos < n1) {
    cq1[static_cast<std::size_t>(pos)] = c;
  } else if (pos < n1 + n2) {
    cq2[static_cast<std::size_t>(pos - n1)] = c;
  } else {
    cq3[static_cast<std::size_t>(pos - n1 - n2)] = c;
  }
  return SolveFromSlices(cq1, cq2, cq3, stats, workspace, control);
}

Result<TopKResult> BepiSolver::QueryTopK(index_t seed, const TopKOptions& opts,
                                         QueryStats* stats,
                                         GmresWorkspace* workspace,
                                         const QueryControl& control) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= dec_.n) {
    return Status::OutOfRange("seed out of range");
  }
  if (opts.k < 1 || opts.k > dec_.n) {
    return Status::InvalidArgument(
        "top_k must be in [1, " + std::to_string(dec_.n) + "], got " +
        std::to_string(opts.k));
  }
  QueryControl ctl = control;
  if (opts.mode == TopKMode::kEps) {
    if (!std::isfinite(opts.eps) || !(opts.eps > 0.0)) {
      return Status::InvalidArgument("eps must be finite and > 0");
    }
    ctl.eps = opts.eps;
  }
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2;
  const index_t pos = dec_.perm[static_cast<std::size_t>(seed)];
  Vector cq1(static_cast<std::size_t>(dec_.n1), 0.0);
  Vector cq2(static_cast<std::size_t>(dec_.n2), 0.0);
  Vector cq3(static_cast<std::size_t>(dec_.n3), 0.0);
  if (pos < n1) {
    cq1[static_cast<std::size_t>(pos)] = c;
  } else if (pos < n1 + n2) {
    cq2[static_cast<std::size_t>(pos - n1)] = c;
  } else {
    cq3[static_cast<std::size_t>(pos - n1 - n2)] = c;
  }
  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  TopKResult out;
  BEPI_ASSIGN_OR_RETURN(
      Vector full, SolveFromSlices(cq1, cq2, cq3, st, workspace, ctl, &opts,
                                   &out));
  if (out.pruned) return out;
  // A terminal stage (power iteration, MC walks) built the full vector:
  // sort it the way the dense caller would, with the producing attempt's
  // residual / confidence half-width as the honest bound.
  out.entries = TopK(full, opts.k, opts.exclude);
  out.error_bound = st->error_bound > 0.0 ? st->error_bound : st->residual;
  CountTopKDenseFallback();
  return out;
}

Result<Vector> BepiSolver::QueryVector(const Vector& q,
                                       QueryStats* stats) const {
  return QueryVector(q, stats, /*workspace=*/nullptr);
}

Result<Vector> BepiSolver::QueryVector(const Vector& q, QueryStats* stats,
                                       GmresWorkspace* workspace) const {
  return QueryVector(q, stats, workspace, QueryControl());
}

Result<Vector> BepiSolver::QueryVector(const Vector& q, QueryStats* stats,
                                       GmresWorkspace* workspace,
                                       const QueryControl& control) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != dec_.n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2;
  Vector cq1(static_cast<std::size_t>(dec_.n1), 0.0);
  Vector cq2(static_cast<std::size_t>(dec_.n2), 0.0);
  Vector cq3(static_cast<std::size_t>(dec_.n3), 0.0);
  for (index_t u = 0; u < dec_.n; ++u) {
    const real_t v = q[static_cast<std::size_t>(u)];
    if (v == 0.0) continue;
    const index_t pos = dec_.perm[static_cast<std::size_t>(u)];
    if (pos < n1) {
      cq1[static_cast<std::size_t>(pos)] = c * v;
    } else if (pos < n1 + n2) {
      cq2[static_cast<std::size_t>(pos - n1)] = c * v;
    } else {
      cq3[static_cast<std::size_t>(pos - n1 - n2)] = c * v;
    }
  }
  return SolveFromSlices(cq1, cq2, cq3, stats, workspace, control);
}

real_t BepiSolver::EpsErrorBound(const Vector& q2_tilde,
                                 const Vector& r2) const {
  if (dec_.n2 == 0) return 0.0;
  // One extra SpMV: the TRUE residual of the returned iterate (GMRES only
  // tracks the preconditioned recurrence residual), so the reported bound
  // never depends on the preconditioner being well-behaved.
  Vector rho(static_cast<std::size_t>(dec_.n2));
  kernels_->schur.ResidualInto(r2, q2_tilde, &rho);
  real_t norm1 = 0.0;
  for (real_t v : rho) norm1 += std::abs(v);
  return ScoreErrorBound(*topk_tables_, norm1, options_.restart_prob);
}

bool BepiSolver::McWarmStart(const Vector& cq1, const Vector& cq2,
                             const Vector& cq3, const QueryControl& control,
                             Vector* x0) const {
  if (!control.warm_start_mc || mc_ == nullptr || dec_.n2 == 0) return false;
  TraceSpan warm_span("query.mc_warm_start");
  // Recover q in original ids from the scaled slices (same mapping as
  // McTerminalHop) and run a deliberately small walk budget: the estimate
  // only has to land GMRES inside the basin where one restart cycle
  // finishes the job, not meet a confidence target.
  const real_t inv_c = static_cast<real_t>(1.0) / options_.restart_prob;
  Vector q(static_cast<std::size_t>(dec_.n), 0.0);
  const index_t n1 = dec_.n1, n2 = dec_.n2;
  auto scatter = [&](const Vector& slice, index_t offset) {
    for (std::size_t i = 0; i < slice.size(); ++i) {
      if (slice[i] != 0.0) {
        q[static_cast<std::size_t>(
            inverse_perm_[static_cast<std::size_t>(offset) + i])] =
            slice[i] * inv_c;
      }
    }
  };
  scatter(cq1, 0);
  scatter(cq2, n1);
  scatter(cq3, n1 + n2);
  McOptions mo;
  mo.restart_prob = options_.restart_prob;
  mo.walks = std::min<std::uint64_t>(mc_fallback_options_.walks, 20'000);
  mo.delta = mc_fallback_options_.delta;
  mo.seed = mc_fallback_options_.seed;
  mo.cancel = control.cancel;
  mo.allow_partial = true;
  Result<McEstimate> est = mc_->EstimateVector(q, mo);
  if (!est.ok()) return false;
  const Vector& scores = est.value().scores;
  x0->assign(static_cast<std::size_t>(n2), 0.0);
  for (index_t j = 0; j < n2; ++j) {
    (*x0)[static_cast<std::size_t>(j)] = scores[static_cast<std::size_t>(
        inverse_perm_[static_cast<std::size_t>(n1 + j)])];
  }
  if (MetricsEnabled()) {
    BEPI_METRIC_COUNTER(warm, "query.mc_warm_starts");
    warm->Increment();
  }
  return true;
}

Result<Vector> BepiSolver::SolveFromSlices(const Vector& cq1,
                                           const Vector& cq2,
                                           const Vector& cq3,
                                           QueryStats* stats,
                                           GmresWorkspace* workspace,
                                           const QueryControl& control,
                                           const TopKOptions* topk,
                                           TopKResult* topk_out) const {
  Timer timer;
  TraceSpan query_span("query");
  if (control.request_id != nullptr) {
    query_span.Arg("request_id", std::string(control.request_id));
  }
  const index_t n1 = dec_.n1, n2 = dec_.n2, n3 = dec_.n3;

  // Everything below runs on the bound kernel views (compact or wide —
  // same results either way; see sparse/kernel.hpp).
  BEPI_CHECK(kernels_ != nullptr);
  const DecompositionKernels& kern = *kernels_;

  // q2~ = c q2 - H21 (U1^{-1} (L1^{-1} (c q1)))  (Algorithm 4, line 3).
  Vector q2_tilde = cq2;
  {
    TraceSpan rhs_span("query.rhs_build");
    if (n1 > 0) {
      const Vector h11inv_cq1 = kern.ApplyH11Inverse(cq1);
      kern.h21.MultiplyAdd(-1.0, h11inv_cq1, &q2_tilde);
    }
  }

  ResilientSolveOptions ropts;
  // Eps mode (QueryControl::eps > 0) truncates the Schur solve at the
  // user's tolerance; the honest sup-norm consequence is computed from the
  // true residual below and reported in stats->error_bound.
  ropts.tol = control.eps > 0.0 ? control.eps : options_.tolerance;
  ropts.max_iters = options_.max_iterations;
  ropts.gmres_restart = options_.gmres_restart;
  ropts.enable_fallbacks = options_.enable_fallbacks;
  ropts.gmres_workspace = workspace;
  ropts.cancel = control.cancel;
  ropts.request_id = control.request_id;
  Vector warm_x0;
  if (McWarmStart(cq1, cq2, cq3, control, &warm_x0)) ropts.x0 = &warm_x0;

  // Solve S r2 = q2~ through the degradation chain (line 4).
  QueryReport report;
  // A cancelled solve that exits early (caller did not opt into partial
  // results) still owes honest stats: the producing attempt's residual is
  // the error bound of the iterate being discarded.
  auto cancelled_early = [&]() -> Status {
    if (stats != nullptr) {
      stats->seconds = timer.Seconds();
      stats->total_iterations = report.total_iterations();
      if (!report.attempts.empty()) {
        const SolveAttempt& producing = report.attempts.back();
        stats->iterations = producing.iterations;
        stats->residual = producing.residual;
      }
      stats->outcome = SolveOutcome::kCancelled;
      stats->report = std::move(report);
    }
    return control.cancel->ToStatus("query");
  };
  Vector r1, r3;
  Vector r2(static_cast<std::size_t>(n2), 0.0);
  bool back_substitute = true;
  if (n2 > 0) {
    std::optional<TraceSpan> schur_span;
    schur_span.emplace("query.schur_solve");
    Result<Vector> schur_solve = [&]() -> Result<Vector> {
      if (options_.inner_solver == BepiInnerSolver::kBicgstab) {
        // Ablation path: BiCGSTAB as the primary inner solver. A failure
        // still drops into the global power fallback below.
        Timer hop_timer;
        SolveStats ss;
        BicgstabOptions bi;
        bi.tol = ropts.tol;
        bi.max_iters = options_.max_iterations;
        bi.cancel = control.cancel;
        KernelCsrOperator op(kern.schur);
        const Preconditioner* m = ilu_.has_value() ? &*ilu_ : nullptr;
        BEPI_ASSIGN_OR_RETURN(Vector x, Bicgstab(op, q2_tilde, bi, &ss, m));
        SolveAttempt attempt;
        attempt.stage = m != nullptr ? "ilu0+bicgstab" : "bicgstab";
        attempt.outcome = ss.outcome;
        attempt.iterations = ss.iterations;
        attempt.residual = ss.relative_residual;
        attempt.seconds = hop_timer.Seconds();
        FlightRecord(FlightEventType::kStageHop, control.request_id,
                     attempt.stage.c_str(),
                     static_cast<std::int64_t>(attempt.seconds * 1e9));
        report.attempts.push_back(attempt);
        report.final_outcome = ss.outcome;
        // Same contract as the resilient chain: a cancelled solve hands
        // back its best iterate and the caller decides below.
        if (ss.outcome == SolveOutcome::kCancelled) return x;
        if (!ss.converged) {
          return Status::NotConverged(
              "BiCGSTAB Schur solve ended with " +
              std::string(SolveOutcomeName(ss.outcome)));
        }
        return x;
      }
      KernelCsrOperator schur_op(kern.schur);
      ResilientSchurSolver schur_solver(dec_.schur, preconditioner(), ropts,
                                        &schur_op);
      return schur_solver.Solve(q2_tilde, &report);
    }();
    schur_span.reset();
    if (schur_solve.ok()) {
      r2 = std::move(schur_solve).value();
      if (report.final_outcome == SolveOutcome::kCancelled &&
          control.cancel != nullptr && !control.allow_partial) {
        // The deadline/cancellation fired and the caller did not opt into
        // partial results: surface the token's Status instead of a vector.
        return cancelled_early();
      }
    } else if (schur_solve.status().code() == StatusCode::kNotConverged &&
               options_.enable_fallbacks) {
      // Hop 4: every Krylov stage failed; solve the original reordered
      // system H r = c q by power iteration, which always converges for
      // RWR. The back-substitution lines are skipped — the fallback
      // produces the full vector directly.
      Vector cq;
      cq.reserve(static_cast<std::size_t>(dec_.n));
      cq.insert(cq.end(), cq1.begin(), cq1.end());
      cq.insert(cq.end(), cq2.begin(), cq2.end());
      cq.insert(cq.end(), cq3.begin(), cq3.end());
      Result<Vector> power =
          SupportsGlobalPowerFallback(dec_)
              ? GlobalPowerFallback(dec_, cq, ropts, &report)
              : Result<Vector>(Status::FailedPrecondition(
                    "decomposition lacks H11/H22 (model predates format "
                    "v2); global power fallback unavailable"));
      if (power.ok()) {
        Vector r = std::move(power).value();
        auto at = [&r](index_t i) {
          return r.begin() + static_cast<std::ptrdiff_t>(i);
        };
        r1.assign(at(0), at(n1));
        r2.assign(at(n1), at(n1 + n2));
        r3.assign(at(n1 + n2), at(dec_.n));
        back_substitute = false;
        if (report.final_outcome == SolveOutcome::kCancelled &&
            control.cancel != nullptr && !control.allow_partial) {
          return cancelled_early();
        }
      } else if (mc_ != nullptr &&
                 (power.status().code() == StatusCode::kNotConverged ||
                  power.status().code() == StatusCode::kFailedPrecondition)) {
        // Hop 5: the Monte-Carlo terminal stage. Every linear-algebra
        // stage — all of which share the preprocessed factors — has
        // failed, so the query is answered from the raw graph instead:
        // simulated walks, with the estimate's confidence half-width
        // recorded as the attempt's residual (an explicit error bound in
        // place of a solver residual).
        Result<Vector> mc_scores = McTerminalHop(cq, &report, control);
        if (!mc_scores.ok()) {
          if (control.cancel != nullptr &&
              (mc_scores.status().code() == StatusCode::kCancelled ||
               mc_scores.status().code() == StatusCode::kDeadlineExceeded)) {
            return cancelled_early();
          }
          return mc_scores.status();
        }
        // The estimate is already in original node ids; scatter it into
        // the reordered slices so the reassembly/stats tail below stays
        // the single exit path.
        const Vector& scores = mc_scores.value();
        r1.assign(static_cast<std::size_t>(n1), 0.0);
        r2.assign(static_cast<std::size_t>(n2), 0.0);
        r3.assign(static_cast<std::size_t>(n3), 0.0);
        for (index_t old = 0; old < dec_.n; ++old) {
          const index_t pos = dec_.perm[static_cast<std::size_t>(old)];
          const real_t v = scores[static_cast<std::size_t>(old)];
          if (pos < n1) {
            r1[static_cast<std::size_t>(pos)] = v;
          } else if (pos < n1 + n2) {
            r2[static_cast<std::size_t>(pos - n1)] = v;
          } else {
            r3[static_cast<std::size_t>(pos - n1 - n2)] = v;
          }
        }
        back_substitute = false;
      } else if (power.status().code() == StatusCode::kFailedPrecondition) {
        // Pre-v2 model and no MC engine attached: the pre-resilience
        // behavior, surfacing the Krylov chain's verdict.
        return schur_solve.status();
      } else {
        return power.status();
      }
    } else {
      return schur_solve.status();
    }
  }

  // The honest eps-mode bound is computed from the iterate the Krylov
  // chain actually hands to back-substitution, partial iterates included.
  real_t eps_bound = 0.0;
  if (control.eps > 0.0 && back_substitute) {
    eps_bound = EpsErrorBound(q2_tilde, r2);
  }
  // Terminal-stage answers (power/MC full vectors) owe a bound too when
  // one was asked for. The MC half-width already is a per-coordinate
  // bound; the power stage's scalar residual is NOT, so recompute the
  // true full-system residual rho = c q - H r and bound via ||rho||_1/c.
  real_t terminal_bound = 0.0;
  if (!back_substitute && (control.eps > 0.0 || topk != nullptr) &&
      !report.attempts.empty()) {
    const SolveAttempt& producing = report.attempts.back();
    if (producing.stage != "power" || !SupportsGlobalPowerFallback(dec_)) {
      terminal_bound = producing.residual;
    } else {
      Vector rho1 = cq1, rho2 = cq2, rho3 = cq3;
      if (n1 > 0) {
        dec_.h11.MultiplyAdd(-1.0, r1, &rho1);
        if (n2 > 0) dec_.h12.MultiplyAdd(-1.0, r2, &rho1);
        if (n3 > 0) dec_.h31.MultiplyAdd(-1.0, r1, &rho3);
      }
      if (n2 > 0) {
        if (n1 > 0) dec_.h21.MultiplyAdd(-1.0, r1, &rho2);
        dec_.h22.MultiplyAdd(-1.0, r2, &rho2);
        if (n3 > 0) dec_.h32.MultiplyAdd(-1.0, r2, &rho3);
      }
      real_t norm1 = 0.0;
      for (real_t v : rho1) norm1 += std::abs(v);
      for (real_t v : rho2) norm1 += std::abs(v);
      for (index_t i = 0; i < n3; ++i) {
        norm1 += std::abs(rho3[static_cast<std::size_t>(i)] -
                          r3[static_cast<std::size_t>(i)]);
      }
      terminal_bound = FullSystemScoreBound(norm1, options_.restart_prob);
    }
  }
  bool topk_answered = false;
  if (topk != nullptr && back_substitute) {
    // Pruned top-k back-substitution: valid for ANY Schur iterate the
    // chain returns (whichever hop produced it, converged or partial),
    // because the dense path would back-substitute the very same r2 — the
    // pruning bounds only have to contain that dense result.
    TraceSpan topk_span("query.topk_backsub");
    real_t bound = eps_bound;
    if (bound == 0.0 && report.final_outcome == SolveOutcome::kCancelled) {
      // Exact-mode partial result: the truncation error is real, report
      // the same residual-derived bound eps mode would.
      bound = EpsErrorBound(q2_tilde, r2);
    }
    *topk_out = PrunedTopK(dec_, *topk_tables_, inverse_perm_,
                           kern.schur.compact(), cq1, cq3, r2, bound, *topk);
    topk_span.Arg("candidates", topk_out->candidates);
    topk_span.Arg("pruned_rows", topk_out->pruned_rows);
    topk_answered = true;
  } else if (back_substitute) {
    TraceSpan backsub_span("query.back_substitution");
    // r1 = U1^{-1} (L1^{-1} (c q1 - H12 r2))  (line 5).
    if (n1 > 0) {
      Vector rhs1 = cq1;
      kern.h12.MultiplyAdd(-1.0, r2, &rhs1);
      r1 = kern.ApplyH11Inverse(rhs1);
    }
    // r3 = c q3 - H31 r1 - H32 r2  (line 6).
    r3 = cq3;
    if (n3 > 0) {
      if (n1 > 0) kern.h31.MultiplyAdd(-1.0, r1, &r3);
      if (n2 > 0) kern.h32.MultiplyAdd(-1.0, r2, &r3);
    }
  }

  // Concatenate and undo the node reordering (line 7). A pruned top-k
  // answer skips this: its deliverable is topk_out's sorted pairs.
  Vector result;
  if (!topk_answered) {
    result.resize(static_cast<std::size_t>(dec_.n));
    for (index_t i = 0; i < n1; ++i) {
      result[static_cast<std::size_t>(
          inverse_perm_[static_cast<std::size_t>(i)])] =
          r1[static_cast<std::size_t>(i)];
    }
    for (index_t i = 0; i < n2; ++i) {
      result[static_cast<std::size_t>(
          inverse_perm_[static_cast<std::size_t>(n1 + i)])] =
          r2[static_cast<std::size_t>(i)];
    }
    for (index_t i = 0; i < n3; ++i) {
      result[static_cast<std::size_t>(
          inverse_perm_[static_cast<std::size_t>(n1 + n2 + i)])] =
          r3[static_cast<std::size_t>(i)];
    }
  }
  const double seconds = timer.Seconds();
  if (MetricsEnabled()) {
    BEPI_METRIC_COUNTER(queries, "query.count");
    BEPI_METRIC_COUNTER(hops, "query.fallback_hops");
    BEPI_METRIC_HISTOGRAM(latency, "query.latency_seconds");
    // Registered outside the conditional so the key exists in every
    // instrumented snapshot (the docs glossary cross-check relies on a
    // deterministic key set).
    BEPI_METRIC_COUNTER(cancelled, "query.cancelled");
    queries->Increment();
    hops->Increment(static_cast<std::uint64_t>(report.fallback_hops()));
    latency->RecordAlways(seconds);
    if (report.final_outcome == SolveOutcome::kCancelled) {
      cancelled->Increment();
    }
  }
  query_span.Arg("fallback_hops", report.fallback_hops());
  query_span.Arg("iterations", report.total_iterations());
  if (stats != nullptr) {
    stats->seconds = seconds;
    // `iterations` belongs to the attempt that produced the result;
    // `total_iterations` is derived from the full chain (the old code
    // risked double-counting if both were accumulated independently).
    stats->total_iterations = report.total_iterations();
    if (!report.attempts.empty()) {
      const SolveAttempt& producing = report.attempts.back();
      stats->iterations = producing.iterations;
      stats->residual = producing.residual;
      stats->outcome = producing.outcome;
      // Eps mode owes a sup-norm bound however the query was answered:
      // the residual-derived one when back-substitution ran, the
      // producing stage's own error metric (power residual, MC confidence
      // half-width) when a terminal stage built the vector directly.
      if (control.eps > 0.0 || (topk != nullptr && !back_substitute)) {
        stats->error_bound = back_substitute ? eps_bound : terminal_bound;
      }
    } else {
      stats->iterations = 0;
      stats->residual = 0.0;
      stats->outcome = SolveOutcome::kConverged;
    }
    stats->report = std::move(report);
  }
  return result;
}

Status BepiSolver::QueryMulti(const std::vector<MultiQueryItem>& items,
                              std::vector<MultiQueryResult>* results) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  BEPI_CHECK(results != nullptr);
  results->clear();
  results->resize(items.size());
  Timer timer;

  // The scalar escape hatch: one ordinary Query with the item's own
  // controls. Used for every item when the block path does not apply, and
  // per column when a blocked solve does not converge — either way the
  // item gets exactly the single-query code path and its full degradation
  // chain.
  auto solo = [&](std::size_t j) {
    MultiQueryResult& res = (*results)[j];
    if (items[j].topk.k > 0) {
      Result<TopKResult> r = QueryTopK(items[j].seed, items[j].topk,
                                       &res.stats, /*workspace=*/nullptr,
                                       items[j].control);
      if (r.ok()) {
        res.topk = std::move(r).value();
        res.status = Status::Ok();
      } else {
        res.status = r.status();
      }
      res.coalesced = false;
      return;
    }
    Result<Vector> r = Query(items[j].seed, &res.stats, /*workspace=*/nullptr,
                             items[j].control);
    if (r.ok()) {
      res.scores = std::move(r).value();
      res.status = Status::Ok();
    } else {
      res.status = r.status();
    }
    res.coalesced = false;
  };

  // The block path only covers the preconditioned-GMRES Schur solve; a
  // degenerate partition (no Schur system) or the BiCGSTAB ablation
  // solver, like a width-1 batch, gains nothing from coalescing.
  if (items.size() < 2 || dec_.n2 == 0 ||
      options_.inner_solver == BepiInnerSolver::kBicgstab) {
    for (std::size_t j = 0; j < items.size(); ++j) solo(j);
    return Status::Ok();
  }

  TraceSpan multi_span("query.multi");
  multi_span.Arg("width", static_cast<index_t>(items.size()));
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2, n3 = dec_.n3;
  BEPI_CHECK(kernels_ != nullptr);
  const DecompositionKernels& kern = *kernels_;

  std::vector<std::size_t> blockable;
  blockable.reserve(items.size());
  for (std::size_t j = 0; j < items.size(); ++j) {
    if (items[j].seed < 0 || items[j].seed >= dec_.n) {
      (*results)[j].status = Status::OutOfRange("seed out of range");
      continue;
    }
    // Eps-mode top-k items solve solo: their truncated tolerance must not
    // leak into the lockstep solve of coalesced neighbors. Invalid k also
    // routes through solo so QueryTopK's validation names the error.
    // Exact top-k items stay blockable — only their back-substitution
    // differs from a dense column.
    const TopKOptions& tk = items[j].topk;
    if (tk.k > 0 && (tk.mode == TopKMode::kEps || tk.k > dec_.n)) {
      solo(j);
      continue;
    }
    // A warm-started item's iterate sequence differs from the zero-start
    // blocked solve; keep the bit-identical-to-solo contract by solving it
    // solo.
    if (items[j].control.warm_start_mc && mc_ != nullptr) {
      solo(j);
      continue;
    }
    blockable.push_back(j);
  }
  if (blockable.size() < 2) {
    for (std::size_t j : blockable) solo(j);
    return Status::Ok();
  }

  // Row-major panels of the partitioned scaled start vectors: one column
  // per blockable seed, a single entry c at the reordered position
  // (Algorithm 4 lines 1-2, k seeds at once).
  const index_t kb = static_cast<index_t>(blockable.size());
  const std::size_t kbz = static_cast<std::size_t>(kb);
  std::vector<real_t> cq1_panel(static_cast<std::size_t>(n1) * kbz, 0.0);
  // q2t starts as the c*q2 panel and becomes the blocked q2~ in place.
  std::vector<real_t> q2t(static_cast<std::size_t>(n2) * kbz, 0.0);
  std::vector<index_t> pos_of(kbz);
  for (std::size_t jj = 0; jj < kbz; ++jj) {
    const index_t pos =
        dec_.perm[static_cast<std::size_t>(items[blockable[jj]].seed)];
    pos_of[jj] = pos;
    if (pos < n1) {
      cq1_panel[static_cast<std::size_t>(pos) * kbz + jj] = c;
    } else if (pos < n1 + n2) {
      q2t[static_cast<std::size_t>(pos - n1) * kbz + jj] = c;
    }
  }

  // Blocked rhs build: q2~ = c q2 - H21 (H11^{-1} (c q1)), two SpMMs and
  // one SpMM-add instead of 3k SpMVs (Algorithm 4 line 3, per column
  // bit-identical to the scalar build).
  std::vector<real_t> panel_tmp;
  {
    TraceSpan rhs_span("query.rhs_build");
    if (n1 > 0) {
      std::vector<real_t> hinv(static_cast<std::size_t>(n1) * kbz);
      kern.ApplyH11InverseMulti(cq1_panel.data(), kb, hinv.data(), &panel_tmp);
      kern.h21.MultiplyAddMulti(-1.0, hinv.data(), kb, q2t.data());
    }
  }

  // Lockstep blocked Schur solve of the primary preconditioned hop.
  std::vector<Vector> rhs_cols(kbz, Vector(static_cast<std::size_t>(n2)));
  for (std::size_t jj = 0; jj < kbz; ++jj) {
    for (index_t i = 0; i < n2; ++i) {
      rhs_cols[jj][static_cast<std::size_t>(i)] =
          q2t[static_cast<std::size_t>(i) * kbz + jj];
    }
  }
  KernelCsrOperator schur_op(kern.schur);
  std::optional<JacobiPreconditioner> jacobi;
  const Preconditioner* precond = preconditioner();
  const char* stage = "ilu0+gmres";
  if (precond == nullptr) {
    jacobi.emplace(dec_.schur);
    precond = &*jacobi;
    stage = "jacobi+gmres";
  }
  BlockGmresOptions bopts;
  bopts.tol = options_.tolerance;
  bopts.max_iters = options_.max_iterations;
  bopts.restart = options_.gmres_restart;
  std::vector<BlockGmresRhs> brhs(kbz);
  for (std::size_t jj = 0; jj < kbz; ++jj) {
    brhs[jj].b = &rhs_cols[jj];
    brhs[jj].cancel = items[blockable[jj]].control.cancel;
  }
  std::vector<BlockGmresColumn> bcols;
  Timer hop_timer;
  const Status block_status =
      BlockGmres(schur_op, brhs, bopts, precond, &bcols);
  const double hop_seconds = hop_timer.Seconds();
  if (!block_status.ok()) {
    // Shape mismatches cannot happen for a bound model; degrade to the
    // scalar path rather than failing the whole batch.
    for (std::size_t j : blockable) solo(j);
    return Status::Ok();
  }

  // Split the verdicts: converged columns proceed to the blocked
  // back-substitution, everything else re-solves through the scalar chain
  // so one stalled/faulted/cancelled seed never poisons its batch.
  std::vector<std::size_t> conv;
  conv.reserve(kbz);
  for (std::size_t jj = 0; jj < kbz; ++jj) {
    if (bcols[jj].stats.converged &&
        bcols[jj].stats.outcome == SolveOutcome::kConverged) {
      conv.push_back(jj);
    } else {
      solo(blockable[jj]);
    }
  }
  if (conv.empty()) return Status::Ok();

  // Exact top-k columns skip the dense panel back-substitution: each gets
  // a pruned per-column pass over its converged r2 instead (bit-identical
  // to the solo path by BlockGmres's per-column contract).
  std::vector<std::size_t> conv_dense, conv_topk;
  for (std::size_t jj : conv) {
    (items[blockable[jj]].topk.k > 0 ? conv_topk : conv_dense).push_back(jj);
  }

  // Fills attempt/report/metrics/stats for a coalesced primary-hop
  // success, identically for dense and top-k columns.
  const double seconds = timer.Seconds();
  const auto finish_col = [&](std::size_t jj, MultiQueryResult* res) {
    SolveAttempt attempt;
    attempt.stage = stage;
    attempt.outcome = SolveOutcome::kConverged;
    attempt.iterations = bcols[jj].stats.iterations;
    attempt.residual = bcols[jj].stats.relative_residual;
    // Wall time the request spent waiting on the shared blocked solve —
    // the latency it observed, not a per-column slice of the work.
    attempt.seconds = hop_seconds;
    const char* request_id = items[blockable[jj]].control.request_id;
    if (MetricsEnabled()) {
      MetricsRegistry::Global()
          .GetCounter("solver.attempts." + attempt.stage)
          ->Increment();
    }
    FlightRecord(FlightEventType::kStageHop, request_id, attempt.stage.c_str(),
                 static_cast<std::int64_t>(attempt.seconds * 1e9));

    QueryReport report;
    report.attempts.push_back(attempt);
    report.final_outcome = SolveOutcome::kConverged;
    if (MetricsEnabled()) {
      BEPI_METRIC_COUNTER(queries, "query.count");
      BEPI_METRIC_COUNTER(hops, "query.fallback_hops");
      BEPI_METRIC_HISTOGRAM(latency, "query.latency_seconds");
      BEPI_METRIC_COUNTER(cancelled, "query.cancelled");
      (void)cancelled;
      queries->Increment();
      hops->Increment(static_cast<std::uint64_t>(report.fallback_hops()));
      latency->RecordAlways(seconds);
    }
    res->coalesced = true;
    res->status = Status::Ok();
    res->stats.seconds = seconds;
    res->stats.total_iterations = report.total_iterations();
    res->stats.iterations = attempt.iterations;
    res->stats.residual = attempt.residual;
    res->stats.outcome = attempt.outcome;
    res->stats.report = std::move(report);
  };

  // Blocked back-substitution (Algorithm 4 lines 5-6 over panels):
  //   r1 = H11^{-1} (c q1 - H12 r2),  r3 = c q3 - H31 r1 - H32 r2.
  if (!conv_dense.empty()) {
    const index_t kc = static_cast<index_t>(conv_dense.size());
    const std::size_t kcz = static_cast<std::size_t>(kc);
    std::vector<real_t> r2_panel(static_cast<std::size_t>(n2) * kcz);
    for (std::size_t q = 0; q < kcz; ++q) {
      const Vector& x = bcols[conv_dense[q]].x;
      for (index_t i = 0; i < n2; ++i) {
        r2_panel[static_cast<std::size_t>(i) * kcz + q] =
            x[static_cast<std::size_t>(i)];
      }
    }
    std::vector<real_t> r1_panel, r3_panel;
    {
      TraceSpan backsub_span("query.back_substitution");
      if (n1 > 0) {
        std::vector<real_t> rhs1(static_cast<std::size_t>(n1) * kcz, 0.0);
        for (std::size_t q = 0; q < kcz; ++q) {
          const index_t pos = pos_of[conv_dense[q]];
          if (pos < n1) rhs1[static_cast<std::size_t>(pos) * kcz + q] = c;
        }
        kern.h12.MultiplyAddMulti(-1.0, r2_panel.data(), kc, rhs1.data());
        r1_panel.resize(static_cast<std::size_t>(n1) * kcz);
        kern.ApplyH11InverseMulti(rhs1.data(), kc, r1_panel.data(),
                                  &panel_tmp);
      }
      r3_panel.assign(static_cast<std::size_t>(n3) * kcz, 0.0);
      for (std::size_t q = 0; q < kcz; ++q) {
        const index_t pos = pos_of[conv_dense[q]];
        if (pos >= n1 + n2) {
          r3_panel[static_cast<std::size_t>(pos - n1 - n2) * kcz + q] = c;
        }
      }
      if (n3 > 0) {
        if (n1 > 0) kern.h31.MultiplyAddMulti(-1.0, r1_panel.data(), kc,
                                              r3_panel.data());
        kern.h32.MultiplyAddMulti(-1.0, r2_panel.data(), kc, r3_panel.data());
      }
    }

    // Reassemble each dense converged column (line 7) and fill its stats
    // exactly the way the scalar tail does for a primary-hop success.
    for (std::size_t q = 0; q < kcz; ++q) {
      const std::size_t jj = conv_dense[q];
      MultiQueryResult& res = (*results)[blockable[jj]];
      res.scores.resize(static_cast<std::size_t>(dec_.n));
      for (index_t i = 0; i < n1; ++i) {
        res.scores[static_cast<std::size_t>(
            inverse_perm_[static_cast<std::size_t>(i)])] =
            r1_panel[static_cast<std::size_t>(i) * kcz + q];
      }
      for (index_t i = 0; i < n2; ++i) {
        res.scores[static_cast<std::size_t>(
            inverse_perm_[static_cast<std::size_t>(n1 + i)])] =
            r2_panel[static_cast<std::size_t>(i) * kcz + q];
      }
      for (index_t i = 0; i < n3; ++i) {
        res.scores[static_cast<std::size_t>(
            inverse_perm_[static_cast<std::size_t>(n1 + n2 + i)])] =
            r3_panel[static_cast<std::size_t>(i) * kcz + q];
      }
      finish_col(jj, &res);
    }
  }

  // Exact top-k columns: pruned back-substitution over each converged r2
  // column. score_bound 0 — the column met the solver tolerance, so the
  // hub scores are as exact as a solo converged solve's.
  for (std::size_t jj : conv_topk) {
    const std::size_t j = blockable[jj];
    MultiQueryResult& res = (*results)[j];
    const index_t pos = pos_of[jj];
    Vector cq1_j(static_cast<std::size_t>(n1), 0.0);
    Vector cq3_j(static_cast<std::size_t>(n3), 0.0);
    if (pos < n1) {
      cq1_j[static_cast<std::size_t>(pos)] = c;
    } else if (pos >= n1 + n2) {
      cq3_j[static_cast<std::size_t>(pos - n1 - n2)] = c;
    }
    res.topk = PrunedTopK(dec_, *topk_tables_, inverse_perm_,
                          kern.schur.compact(), cq1_j, cq3_j, bcols[jj].x,
                          /*score_bound=*/0.0, items[j].topk);
    finish_col(jj, &res);
  }
  return Status::Ok();
}

Status BepiSolver::AttachMcFallback(const McWalkEngine* engine,
                                    McFallbackOptions options) {
  if (engine != nullptr && preprocessed_ && engine->num_nodes() != dec_.n) {
    return Status::InvalidArgument(
        "mc fallback engine covers " + std::to_string(engine->num_nodes()) +
        " nodes but the model has " + std::to_string(dec_.n));
  }
  if (engine != nullptr && options.walks == 0) {
    return Status::InvalidArgument("mc fallback walk budget must be positive");
  }
  mc_ = engine;
  mc_fallback_options_ = options;
  return Status::Ok();
}

Result<Vector> BepiSolver::McTerminalHop(const Vector& cq, QueryReport* report,
                                         const QueryControl& control) const {
  TraceSpan hop_span("query.mc_fallback");
  Timer hop_timer;
  // Recover the start distribution q in original ids from the reordered
  // scaled slices: q[old] = cq[perm[old]] / c.
  Vector q(static_cast<std::size_t>(dec_.n), 0.0);
  const real_t inv_c = static_cast<real_t>(1.0) / options_.restart_prob;
  for (index_t i = 0; i < dec_.n; ++i) {
    const real_t v = cq[static_cast<std::size_t>(i)];
    if (v != 0.0) {
      q[static_cast<std::size_t>(inverse_perm_[static_cast<std::size_t>(i)])] =
          v * inv_c;
    }
  }
  McOptions mo;
  mo.restart_prob = options_.restart_prob;
  mo.walks = mc_fallback_options_.walks;
  mo.delta = mc_fallback_options_.delta;
  mo.seed = mc_fallback_options_.seed;
  mo.cancel = control.cancel;
  mo.allow_partial = control.allow_partial;
  Result<McEstimate> est = mc_->EstimateVector(q, mo);
  SolveAttempt attempt;
  attempt.stage = "mc";
  if (est.ok()) {
    attempt.outcome = est.value().outcome;
    attempt.iterations = static_cast<index_t>(est.value().walks_completed);
    attempt.residual = est.value().uniform_eps;
  } else {
    const bool token_expired =
        est.status().code() == StatusCode::kCancelled ||
        est.status().code() == StatusCode::kDeadlineExceeded;
    attempt.outcome =
        token_expired ? SolveOutcome::kCancelled : SolveOutcome::kBreakdown;
    attempt.iterations = 0;
    attempt.residual = 1.0;  // an estimate that never ran bounds nothing
  }
  attempt.seconds = hop_timer.Seconds();
  if (MetricsEnabled()) {
    MetricsRegistry::Global().GetCounter("solver.attempts.mc")->Increment();
  }
  FlightRecord(FlightEventType::kStageHop, control.request_id, "mc",
               static_cast<std::int64_t>(attempt.seconds * 1e9));
  report->attempts.push_back(attempt);
  report->final_outcome = attempt.outcome;
  if (hop_span.active()) {
    hop_span.Arg("outcome", SolveOutcomeName(attempt.outcome));
    hop_span.Arg("walks", attempt.iterations);
    hop_span.Arg("uniform_eps", attempt.residual);
    if (control.request_id != nullptr) {
      hop_span.Arg("request_id", std::string(control.request_id));
    }
  }
  if (!est.ok()) return est.status();
  return std::move(est).value().scores;
}

std::uint64_t BepiSolver::PreprocessedBytes() const {
  std::uint64_t bytes = dec_.CommonBytes() + dec_.schur.ByteSize();
  if (ilu_.has_value()) bytes += ilu_->ByteSize();
  // The compact path is not free: its uint32 index sidecars live alongside
  // the wide arrays and belong in the reported footprint.
  if (kernels_ != nullptr) bytes += kernels_->OwnedBytes();
  return bytes;
}

namespace {

// v2 appends H11 and H22 so loaded models can take the global
// power-iteration fallback; v1 models are still readable (the fallback is
// then unavailable). v3 keeps v2's content but frames every piece
// (options, permutation, each matrix) as a length- and CRC32C-carrying
// section with a trailing manifest (common/sections.hpp), so any
// corruption is detected at load and attributed to a section.
constexpr char kModelHeaderV1[] = "BEPI-MODEL v1";
constexpr char kModelHeaderV2[] = "BEPI-MODEL v2";
constexpr char kModelHeaderV3[] = "BEPI-MODEL v3";

/// The nine stored matrices in serialization order with their shapes in
/// terms of the partition sizes. H11/H22 (slots 7 and 8) are the v2
/// additions absent from v1 files.
struct MatrixSpec {
  const char* name;
  CsrMatrix HubSpokeDecomposition::*member;
  index_t HubSpokeDecomposition::*rows;
  index_t HubSpokeDecomposition::*cols;
};

constexpr MatrixSpec kMatrixSpecs[] = {
    {"l1_inv", &HubSpokeDecomposition::l1_inv, &HubSpokeDecomposition::n1,
     &HubSpokeDecomposition::n1},
    {"u1_inv", &HubSpokeDecomposition::u1_inv, &HubSpokeDecomposition::n1,
     &HubSpokeDecomposition::n1},
    {"h12", &HubSpokeDecomposition::h12, &HubSpokeDecomposition::n1,
     &HubSpokeDecomposition::n2},
    {"h21", &HubSpokeDecomposition::h21, &HubSpokeDecomposition::n2,
     &HubSpokeDecomposition::n1},
    {"h31", &HubSpokeDecomposition::h31, &HubSpokeDecomposition::n3,
     &HubSpokeDecomposition::n1},
    {"h32", &HubSpokeDecomposition::h32, &HubSpokeDecomposition::n3,
     &HubSpokeDecomposition::n2},
    {"schur", &HubSpokeDecomposition::schur, &HubSpokeDecomposition::n2,
     &HubSpokeDecomposition::n2},
    {"h11", &HubSpokeDecomposition::h11, &HubSpokeDecomposition::n1,
     &HubSpokeDecomposition::n1},
    {"h22", &HubSpokeDecomposition::h22, &HubSpokeDecomposition::n2,
     &HubSpokeDecomposition::n2},
};

Status ParseModelOptions(std::istream& in, BepiOptions* options) {
  int mode = 0;
  real_t hub_ratio = 0.0;
  in >> mode >> options->restart_prob >> options->tolerance >>
      options->max_iterations >> options->gmres_restart >> hub_ratio;
  if (!in || mode < 0 || mode > 2) {
    return Status::IoError("malformed BePI model options");
  }
  options->mode = static_cast<BepiMode>(mode);
  options->hub_ratio = hub_ratio;
  return Status::Ok();
}

/// Parses "n n1 n2 n3" followed by n permutation entries. `limit_bytes`
/// caps n before the resize: each entry takes at least two bytes of input,
/// so a size line claiming more entries than bytes is rejected without
/// allocating (allocation-bomb hardening, satellite of the v3 work).
void WriteSchedule(std::ostream& out, const char* label,
                   const LevelSchedule& s) {
  out << label << " " << s.num_levels() << " " << s.num_rows() << "\n";
  for (std::size_t i = 0; i < s.level_ptr().size(); ++i) {
    out << s.level_ptr()[i] << (i + 1 == s.level_ptr().size() ? '\n' : ' ');
  }
  for (std::size_t i = 0; i < s.rows().size(); ++i) {
    out << s.rows()[i] << (i + 1 == s.rows().size() ? '\n' : ' ');
  }
}

Result<LevelSchedule> ParseSchedule(std::istream& in, const char* label,
                                    std::int64_t limit_bytes) {
  std::string tag;
  index_t num_levels = 0, num_rows = 0;
  in >> tag >> num_levels >> num_rows;
  if (!in || tag != label || num_levels < 0 || num_rows < 0) {
    return Status::IoError(std::string("malformed '") + label +
                           "' level schedule header");
  }
  // Each persisted entry takes at least two bytes; reject count bombs
  // before allocating (same hardening as ParseSizesAndPerm).
  if (limit_bytes >= 0 && num_levels + num_rows > limit_bytes / 2 + 1) {
    return Status::IoError(std::string("'") + label +
                           "' level schedule claims more entries than the "
                           "section holds");
  }
  std::vector<index_t> level_ptr(static_cast<std::size_t>(num_levels) + 1);
  for (index_t& v : level_ptr) in >> v;
  std::vector<index_t> rows(static_cast<std::size_t>(num_rows));
  for (index_t& v : rows) in >> v;
  if (!in) {
    return Status::IoError(std::string("malformed '") + label +
                           "' level schedule data");
  }
  return LevelSchedule::FromParts(std::move(level_ptr), std::move(rows));
}

Status ParseSizesAndPerm(std::istream& in, std::int64_t limit_bytes,
                         HubSpokeDecomposition* dec) {
  in >> dec->n >> dec->n1 >> dec->n2 >> dec->n3;
  if (!in || dec->n < 0 || dec->n1 < 0 || dec->n2 < 0 || dec->n3 < 0 ||
      dec->n1 + dec->n2 + dec->n3 != dec->n) {
    return Status::IoError("malformed BePI model partition sizes");
  }
  if (limit_bytes >= 0 && dec->n > limit_bytes / 2 + 1) {
    return Status::IoError(
        "BePI model claims " + std::to_string(dec->n) +
        " nodes but only " + std::to_string(limit_bytes) +
        " bytes of permutation data follow");
  }
  dec->perm.resize(static_cast<std::size_t>(dec->n));
  for (index_t i = 0; i < dec->n; ++i) {
    in >> dec->perm[static_cast<std::size_t>(i)];
  }
  if (!in || !IsPermutation(dec->perm)) {
    return Status::IoError("malformed BePI model permutation");
  }
  return Status::Ok();
}

}  // namespace

Status BepiSolver::Save(std::ostream& out) const {
  if (!preprocessed_) {
    return Status::FailedPrecondition("nothing to save: Preprocess not called");
  }
  SectionWriter writer(out, kModelHeaderV3);
  std::ostringstream options;
  options.precision(17);
  options << static_cast<int>(options_.mode) << " " << options_.restart_prob
          << " " << options_.tolerance << " " << options_.max_iterations
          << " " << options_.gmres_restart << " " << effective_hub_ratio_
          << "\n";
  BEPI_RETURN_IF_ERROR(writer.Add("options", options.str()));
  std::ostringstream perm;
  perm << dec_.n << " " << dec_.n1 << " " << dec_.n2 << " " << dec_.n3
       << "\n";
  for (index_t i = 0; i < dec_.n; ++i) {
    perm << dec_.perm[static_cast<std::size_t>(i)]
         << (i + 1 == dec_.n ? '\n' : ' ');
  }
  BEPI_RETURN_IF_ERROR(writer.Add("perm", perm.str()));
  for (const MatrixSpec& spec : kMatrixSpecs) {
    std::ostringstream payload;
    BEPI_RETURN_IF_ERROR(WriteMatrixMarket(dec_.*spec.member, payload));
    BEPI_RETURN_IF_ERROR(writer.Add(spec.name, payload.str()));
  }
  // Kernel-layer state, appended last so pre-kernel readers (which drain
  // unknown trailing sections) still load the model. Records the resolved
  // path and, when the preconditioner is armed, the ILU(0) level schedules
  // so a loading server skips recomputing them. Everything here is derived
  // deterministically from the matrices above, keeping Save byte-stable.
  if (kernels_ != nullptr) {
    std::ostringstream payload;
    payload << "path " << KernelPathName(kernels_->path) << "\n";
    if (ilu_.has_value() && ilu_->has_schedules()) {
      WriteSchedule(payload, "lower", *ilu_->lower_levels());
      WriteSchedule(payload, "upper", *ilu_->upper_levels());
    }
    BEPI_RETURN_IF_ERROR(writer.Add("kernel", payload.str()));
  }
  // Spoke block layout, consumed by the top-k pruning tables
  // (core/topk.hpp). Trailing like "kernel" so pre-topk readers drain it
  // untouched; loaders of older files fall back to a single coarse block.
  if (!dec_.block_sizes.empty()) {
    std::ostringstream payload;
    payload << dec_.block_sizes.size() << "\n";
    for (std::size_t b = 0; b < dec_.block_sizes.size(); ++b) {
      payload << dec_.block_sizes[b]
              << (b + 1 == dec_.block_sizes.size() ? '\n' : ' ');
    }
    BEPI_RETURN_IF_ERROR(writer.Add("blocks", payload.str()));
  }
  BEPI_RETURN_IF_ERROR(writer.Finish());
  if (!out) return Status::IoError("failed writing BePI model stream");
  return Status::Ok();
}

Status BepiSolver::SaveFile(const std::string& path) const {
  AtomicFileWriter writer(path);
  BEPI_RETURN_IF_ERROR(writer.status());
  BEPI_RETURN_IF_ERROR(Save(writer.stream()));
  // Commit flushes, closes and checks the stream (the old plain-ofstream
  // path silently swallowed close-time errors), fsyncs, and renames into
  // place so a crash never leaves a torn model at `path`.
  return writer.Commit();
}

Result<BepiSolver> BepiSolver::LoadV3(std::istream& in) {
  SectionReader reader(
      in, static_cast<std::uint64_t>(
              std::char_traits<char>::length(kModelHeaderV3)) + 1);
  BEPI_ASSIGN_OR_RETURN(Section options_section, reader.Expect("options"));
  BepiOptions options;
  {
    std::istringstream options_in(options_section.payload);
    BEPI_RETURN_IF_ERROR(ParseModelOptions(options_in, &options));
  }
  BepiSolver solver(options);
  HubSpokeDecomposition& dec = solver.dec_;
  BEPI_ASSIGN_OR_RETURN(Section perm_section, reader.Expect("perm"));
  {
    std::istringstream perm_in(perm_section.payload);
    BEPI_RETURN_IF_ERROR(ParseSizesAndPerm(
        perm_in, static_cast<std::int64_t>(perm_section.payload.size()),
        &dec));
  }
  for (const MatrixSpec& spec : kMatrixSpecs) {
    BEPI_ASSIGN_OR_RETURN(Section section, reader.Expect(spec.name));
    std::istringstream matrix_in(section.payload);
    BEPI_ASSIGN_OR_RETURN(
        dec.*spec.member,
        ReadMatrixMarket(matrix_in, dec.*spec.rows, dec.*spec.cols));
  }
  // Drain to the manifest so tail truncation and directory mismatches are
  // caught even though all expected sections were present. The optional
  // "kernel" section (newer writers) is picked up here; anything else
  // unknown is skipped for forward compatibility.
  while (!reader.done()) {
    BEPI_ASSIGN_OR_RETURN(std::optional<Section> extra, reader.Next());
    if (!extra.has_value()) continue;
    if (extra->name == "blocks") {
      // Spoke block layout for the top-k pruning tables. Strictly
      // optional: a malformed or missing section only costs pruning
      // granularity (single-block fallback), never the load.
      std::istringstream blocks_in(extra->payload);
      std::int64_t nb = 0;
      blocks_in >> nb;
      const std::int64_t limit =
          static_cast<std::int64_t>(extra->payload.size());
      if (!blocks_in || nb < 0 || nb > limit / 2 + 1) {
        BEPI_LOG(Warning) << "malformed model blocks section; ignoring";
        continue;
      }
      std::vector<index_t> sizes(static_cast<std::size_t>(nb));
      index_t sum = 0;
      bool valid = true;
      for (index_t& s : sizes) {
        if (!(blocks_in >> s) || s <= 0) {
          valid = false;
          break;
        }
        sum += s;
      }
      if (!valid || sum != dec.n1) {
        BEPI_LOG(Warning) << "model blocks section does not tile the spoke "
                             "partition; ignoring";
        continue;
      }
      dec.block_sizes = std::move(sizes);
      continue;
    }
    if (extra->name != "kernel") continue;
    std::istringstream kernel_in(extra->payload);
    std::string tag, path_name;
    if (kernel_in >> tag >> path_name && tag == "path") {
      Result<KernelPath> path = ParseKernelPath(path_name);
      if (path.ok()) {
        solver.loaded_path_ = *path;
      } else {
        BEPI_LOG(Warning) << "ignoring unknown kernel path '" << path_name
                          << "' in model kernel section";
      }
    } else {
      BEPI_LOG(Warning) << "malformed model kernel section; ignoring";
      continue;
    }
    // Schedules are optional (absent when the model has no armed ILU);
    // unreadable ones are simply rebuilt at bind time.
    const std::int64_t limit =
        static_cast<std::int64_t>(extra->payload.size());
    Result<LevelSchedule> lower = ParseSchedule(kernel_in, "lower", limit);
    if (!lower.ok()) continue;
    Result<LevelSchedule> upper = ParseSchedule(kernel_in, "upper", limit);
    if (!upper.ok()) continue;
    solver.loaded_lower_ = std::move(lower).value();
    solver.loaded_upper_ = std::move(upper).value();
  }
  BEPI_RETURN_IF_ERROR(solver.FinalizeLoaded());
  return solver;
}

Result<BepiSolver> BepiSolver::Load(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) {
    return Status::IoError("empty BePI model stream");
  }
  if (header == kModelHeaderV3) return LoadV3(in);
  if (header != kModelHeaderV1 && header != kModelHeaderV2) {
    return Status::IoError("not a BePI model stream (bad header)");
  }
  const bool v2 = header == kModelHeaderV2;
  BepiOptions options;
  BEPI_RETURN_IF_ERROR(ParseModelOptions(in, &options));

  BepiSolver solver(options);
  HubSpokeDecomposition& dec = solver.dec_;
  BEPI_RETURN_IF_ERROR(
      ParseSizesAndPerm(in, StreamRemainingBytes(in), &dec));
  in.ignore(1, '\n');
  const std::size_t num_matrices =
      v2 ? std::size(kMatrixSpecs) : std::size(kMatrixSpecs) - 2;
  for (std::size_t i = 0; i < num_matrices; ++i) {
    const MatrixSpec& spec = kMatrixSpecs[i];
    // Expected shapes are known from the partition sizes; passing them
    // rejects dimension bombs before any allocation.
    BEPI_ASSIGN_OR_RETURN(
        dec.*spec.member,
        ReadMatrixMarket(in, dec.*spec.rows, dec.*spec.cols));
  }
  BEPI_RETURN_IF_ERROR(solver.FinalizeLoaded());
  return solver;
}

Status BepiSolver::FinalizeLoaded() {
  bool ilu_skipped = false;
  if (options_.mode == BepiMode::kPreconditioned && dec_.n2 > 0) {
    Result<Ilu0> ilu = Ilu0::Factor(dec_.schur);
    if (ilu.ok()) {
      ilu_ = std::move(ilu).value();
    } else if (options_.enable_fallbacks &&
               ilu.status().code() == StatusCode::kFailedPrecondition) {
      BEPI_LOG(Warning) << "ILU(0) breakdown on load, continuing "
                        << "unpreconditioned: " << ilu.status().ToString();
      ilu_skipped = true;
    } else {
      return ilu.status();
    }
  }
  inverse_perm_ = InversePermutation(dec_.perm);
  // Only the structural fields survive a round-trip; the timing breakdown
  // and H22/product counts belong to the original preprocessing run.
  info_ = BepiPreprocessInfo();
  info_.n1 = dec_.n1;
  info_.n2 = dec_.n2;
  info_.n3 = dec_.n3;
  info_.schur_nnz = dec_.schur.nnz();
  info_.ilu_skipped = ilu_skipped;
  BindQueryKernels(/*from_load=*/true);
  preprocessed_ = true;
  return Status::Ok();
}

Result<BepiSolver> BepiSolver::LoadFile(const std::string& path) {
  // Whole-file read (rather than a streaming ifstream) routes every load
  // through the fileio.bit_flip fault site, exercising checksum detection
  // end to end.
  BEPI_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  std::istringstream in(std::move(content));
  return Load(in);
}

}  // namespace bepi
