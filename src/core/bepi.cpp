#include "core/bepi.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "solver/bicgstab.hpp"
#include "solver/gmres.hpp"
#include "sparse/io.hpp"

namespace bepi {

const char* BepiModeName(BepiMode mode) {
  switch (mode) {
    case BepiMode::kBasic:
      return "BePI-B";
    case BepiMode::kSparsified:
      return "BePI-S";
    case BepiMode::kPreconditioned:
      return "BePI";
  }
  return "BePI-?";
}

BepiSolver::BepiSolver(BepiOptions options) : options_(options) {
  effective_hub_ratio_ = options_.hub_ratio > 0.0
                             ? options_.hub_ratio
                             : (options_.mode == BepiMode::kBasic ? 0.001
                                                                  : 0.2);
}

std::string BepiSolver::name() const { return BepiModeName(options_.mode); }

Status BepiSolver::Preprocess(const Graph& g) {
  Timer total_timer;
  preprocessed_ = false;

  MemoryBudget budget(options_.memory_budget_bytes);
  DecompositionOptions dopts;
  dopts.restart_prob = options_.restart_prob;
  dopts.hub_ratio = effective_hub_ratio_;
  dopts.hub_selection = options_.hub_selection;
  BEPI_ASSIGN_OR_RETURN(dec_, BuildDecomposition(g, dopts, &budget));

  info_ = BepiPreprocessInfo();
  info_.n1 = dec_.n1;
  info_.n2 = dec_.n2;
  info_.n3 = dec_.n3;
  info_.num_blocks = static_cast<index_t>(dec_.block_sizes.size());
  info_.slashburn_iterations = dec_.slashburn_iterations;
  info_.schur_nnz = dec_.schur.nnz();
  info_.h22_nnz = dec_.h22.nnz();
  info_.product_nnz = dec_.product_nnz;
  info_.reorder_seconds = dec_.reorder_seconds;
  info_.build_seconds = dec_.build_seconds;
  info_.factor_seconds = dec_.factor_seconds;
  info_.schur_seconds = dec_.schur_seconds;

  ilu_.reset();
  if (options_.mode == BepiMode::kPreconditioned && dec_.n2 > 0) {
    Timer ilu_timer;
    // The ILU(0) factors have the same footprint as S (paper Section 3.5).
    BEPI_RETURN_IF_ERROR(
        budget.Charge(dec_.schur.ByteSize(), "ILU(0) factors of S"));
    BEPI_ASSIGN_OR_RETURN(Ilu0 ilu, Ilu0::Factor(dec_.schur));
    ilu_ = std::move(ilu);
    info_.ilu_seconds = ilu_timer.Seconds();
  }
  inverse_perm_ = InversePermutation(dec_.perm);
  preprocess_seconds_ = total_timer.Seconds();
  preprocessed_ = true;
  return Status::Ok();
}

Result<Vector> BepiSolver::Query(index_t seed, QueryStats* stats) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= dec_.n) {
    return Status::OutOfRange("seed out of range");
  }
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2, n3 = dec_.n3;

  // Partitioned starting vector: c*q has a single entry at the reordered
  // seed position (Algorithm 4, lines 1-2).
  const index_t pos = dec_.perm[static_cast<std::size_t>(seed)];
  Vector cq1(static_cast<std::size_t>(n1), 0.0);
  Vector cq2(static_cast<std::size_t>(n2), 0.0);
  Vector cq3(static_cast<std::size_t>(n3), 0.0);
  if (pos < n1) {
    cq1[static_cast<std::size_t>(pos)] = c;
  } else if (pos < n1 + n2) {
    cq2[static_cast<std::size_t>(pos - n1)] = c;
  } else {
    cq3[static_cast<std::size_t>(pos - n1 - n2)] = c;
  }
  return SolveFromSlices(cq1, cq2, cq3, stats);
}

Result<Vector> BepiSolver::QueryVector(const Vector& q,
                                       QueryStats* stats) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != dec_.n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2;
  Vector cq1(static_cast<std::size_t>(dec_.n1), 0.0);
  Vector cq2(static_cast<std::size_t>(dec_.n2), 0.0);
  Vector cq3(static_cast<std::size_t>(dec_.n3), 0.0);
  for (index_t u = 0; u < dec_.n; ++u) {
    const real_t v = q[static_cast<std::size_t>(u)];
    if (v == 0.0) continue;
    const index_t pos = dec_.perm[static_cast<std::size_t>(u)];
    if (pos < n1) {
      cq1[static_cast<std::size_t>(pos)] = c * v;
    } else if (pos < n1 + n2) {
      cq2[static_cast<std::size_t>(pos - n1)] = c * v;
    } else {
      cq3[static_cast<std::size_t>(pos - n1 - n2)] = c * v;
    }
  }
  return SolveFromSlices(cq1, cq2, cq3, stats);
}

Result<Vector> BepiSolver::SolveFromSlices(const Vector& cq1,
                                           const Vector& cq2,
                                           const Vector& cq3,
                                           QueryStats* stats) const {
  Timer timer;
  const index_t n1 = dec_.n1, n2 = dec_.n2, n3 = dec_.n3;

  // q2~ = c q2 - H21 (U1^{-1} (L1^{-1} (c q1)))  (Algorithm 4, line 3).
  Vector q2_tilde = cq2;
  if (n1 > 0) {
    const Vector h11inv_cq1 = dec_.ApplyH11Inverse(cq1);
    dec_.h21.MultiplyAdd(-1.0, h11inv_cq1, &q2_tilde);
  }

  // Solve S r2 = q2~ with a preconditioned Krylov method (line 4).
  Vector r2(static_cast<std::size_t>(n2), 0.0);
  SolveStats solve_stats;
  if (n2 > 0) {
    CsrOperator op(dec_.schur);
    const Preconditioner* m = ilu_.has_value() ? &*ilu_ : nullptr;
    if (options_.inner_solver == BepiInnerSolver::kBicgstab) {
      BicgstabOptions bi;
      bi.tol = options_.tolerance;
      bi.max_iters = options_.max_iterations;
      BEPI_ASSIGN_OR_RETURN(r2, Bicgstab(op, q2_tilde, bi, &solve_stats, m));
    } else {
      GmresOptions gm;
      gm.tol = options_.tolerance;
      gm.max_iters = options_.max_iterations;
      gm.restart = options_.gmres_restart;
      BEPI_ASSIGN_OR_RETURN(r2, Gmres(op, q2_tilde, gm, &solve_stats, m));
    }
    if (!solve_stats.converged) {
      return Status::NotConverged(
          "Schur-complement solve did not reach tolerance " +
          std::to_string(options_.tolerance) + " in " +
          std::to_string(options_.max_iterations) + " iterations");
    }
  }

  // r1 = U1^{-1} (L1^{-1} (c q1 - H12 r2))  (line 5).
  Vector r1;
  if (n1 > 0) {
    Vector rhs1 = cq1;
    dec_.h12.MultiplyAdd(-1.0, r2, &rhs1);
    r1 = dec_.ApplyH11Inverse(rhs1);
  }

  // r3 = c q3 - H31 r1 - H32 r2  (line 6).
  Vector r3 = cq3;
  if (n3 > 0) {
    if (n1 > 0) dec_.h31.MultiplyAdd(-1.0, r1, &r3);
    if (n2 > 0) dec_.h32.MultiplyAdd(-1.0, r2, &r3);
  }

  // Concatenate and undo the node reordering (line 7).
  Vector result(static_cast<std::size_t>(dec_.n));
  for (index_t i = 0; i < n1; ++i) {
    result[static_cast<std::size_t>(inverse_perm_[static_cast<std::size_t>(i)])] =
        r1[static_cast<std::size_t>(i)];
  }
  for (index_t i = 0; i < n2; ++i) {
    result[static_cast<std::size_t>(
        inverse_perm_[static_cast<std::size_t>(n1 + i)])] =
        r2[static_cast<std::size_t>(i)];
  }
  for (index_t i = 0; i < n3; ++i) {
    result[static_cast<std::size_t>(
        inverse_perm_[static_cast<std::size_t>(n1 + n2 + i)])] =
        r3[static_cast<std::size_t>(i)];
  }
  if (stats != nullptr) {
    stats->seconds = timer.Seconds();
    stats->iterations = solve_stats.iterations;
    stats->residual = solve_stats.relative_residual;
  }
  return result;
}

std::uint64_t BepiSolver::PreprocessedBytes() const {
  std::uint64_t bytes = dec_.CommonBytes() + dec_.schur.ByteSize();
  if (ilu_.has_value()) bytes += ilu_->ByteSize();
  return bytes;
}

namespace {

constexpr char kModelHeader[] = "BEPI-MODEL v1";

}  // namespace

Status BepiSolver::Save(std::ostream& out) const {
  if (!preprocessed_) {
    return Status::FailedPrecondition("nothing to save: Preprocess not called");
  }
  out << kModelHeader << "\n";
  out.precision(17);
  out << static_cast<int>(options_.mode) << " " << options_.restart_prob
      << " " << options_.tolerance << " " << options_.max_iterations << " "
      << options_.gmres_restart << " " << effective_hub_ratio_ << "\n";
  out << dec_.n << " " << dec_.n1 << " " << dec_.n2 << " " << dec_.n3 << "\n";
  for (index_t i = 0; i < dec_.n; ++i) {
    out << dec_.perm[static_cast<std::size_t>(i)]
        << (i + 1 == dec_.n ? '\n' : ' ');
  }
  // Query-phase matrices in a fixed order (the paper's stored set).
  for (const CsrMatrix* m : {&dec_.l1_inv, &dec_.u1_inv, &dec_.h12, &dec_.h21,
                             &dec_.h31, &dec_.h32, &dec_.schur}) {
    BEPI_RETURN_IF_ERROR(WriteMatrixMarket(*m, out));
  }
  if (!out) return Status::IoError("failed writing BePI model stream");
  return Status::Ok();
}

Status BepiSolver::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return Save(out);
}

Result<BepiSolver> BepiSolver::Load(std::istream& in) {
  std::string header;
  if (!std::getline(in, header) || header != kModelHeader) {
    return Status::IoError("not a BePI model stream (bad header)");
  }
  BepiOptions options;
  int mode = 0;
  real_t hub_ratio = 0.0;
  in >> mode >> options.restart_prob >> options.tolerance >>
      options.max_iterations >> options.gmres_restart >> hub_ratio;
  if (!in || mode < 0 || mode > 2) {
    return Status::IoError("malformed BePI model options");
  }
  options.mode = static_cast<BepiMode>(mode);
  options.hub_ratio = hub_ratio;

  BepiSolver solver(options);
  HubSpokeDecomposition& dec = solver.dec_;
  in >> dec.n >> dec.n1 >> dec.n2 >> dec.n3;
  if (!in || dec.n < 0 || dec.n1 < 0 || dec.n2 < 0 || dec.n3 < 0 ||
      dec.n1 + dec.n2 + dec.n3 != dec.n) {
    return Status::IoError("malformed BePI model partition sizes");
  }
  dec.perm.resize(static_cast<std::size_t>(dec.n));
  for (index_t i = 0; i < dec.n; ++i) {
    in >> dec.perm[static_cast<std::size_t>(i)];
  }
  if (!in || !IsPermutation(dec.perm)) {
    return Status::IoError("malformed BePI model permutation");
  }
  in.ignore(1, '\n');
  for (CsrMatrix* m : {&dec.l1_inv, &dec.u1_inv, &dec.h12, &dec.h21, &dec.h31,
                       &dec.h32, &dec.schur}) {
    BEPI_ASSIGN_OR_RETURN(*m, ReadMatrixMarket(in));
  }
  // Shape checks tie the matrices to the declared partition sizes.
  if (dec.l1_inv.rows() != dec.n1 || dec.u1_inv.rows() != dec.n1 ||
      dec.h12.rows() != dec.n1 || dec.h12.cols() != dec.n2 ||
      dec.h21.rows() != dec.n2 || dec.h21.cols() != dec.n1 ||
      dec.h31.rows() != dec.n3 || dec.h31.cols() != dec.n1 ||
      dec.h32.rows() != dec.n3 || dec.h32.cols() != dec.n2 ||
      dec.schur.rows() != dec.n2 || dec.schur.cols() != dec.n2) {
    return Status::IoError("BePI model matrices inconsistent with sizes");
  }
  if (options.mode == BepiMode::kPreconditioned && dec.n2 > 0) {
    BEPI_ASSIGN_OR_RETURN(Ilu0 ilu, Ilu0::Factor(dec.schur));
    solver.ilu_ = std::move(ilu);
  }
  solver.inverse_perm_ = InversePermutation(dec.perm);
  // Only the structural fields survive a round-trip; the timing breakdown
  // and H22/product counts belong to the original preprocessing run.
  solver.info_ = BepiPreprocessInfo();
  solver.info_.n1 = dec.n1;
  solver.info_.n2 = dec.n2;
  solver.info_.n3 = dec.n3;
  solver.info_.schur_nnz = dec.schur.nnz();
  solver.preprocessed_ = true;
  return solver;
}

Result<BepiSolver> BepiSolver::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return Load(in);
}

}  // namespace bepi
