#include "core/bepi.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/resilient.hpp"
#include "solver/bicgstab.hpp"
#include "solver/gmres.hpp"
#include "sparse/io.hpp"

namespace bepi {

const char* BepiModeName(BepiMode mode) {
  switch (mode) {
    case BepiMode::kBasic:
      return "BePI-B";
    case BepiMode::kSparsified:
      return "BePI-S";
    case BepiMode::kPreconditioned:
      return "BePI";
  }
  return "BePI-?";
}

BepiSolver::BepiSolver(BepiOptions options) : options_(options) {
  effective_hub_ratio_ = options_.hub_ratio > 0.0
                             ? options_.hub_ratio
                             : (options_.mode == BepiMode::kBasic ? 0.001
                                                                  : 0.2);
}

std::string BepiSolver::name() const { return BepiModeName(options_.mode); }

Status BepiSolver::Preprocess(const Graph& g) {
  Timer total_timer;
  preprocessed_ = false;

  MemoryBudget budget(options_.memory_budget_bytes);
  DecompositionOptions dopts;
  dopts.restart_prob = options_.restart_prob;
  dopts.hub_ratio = effective_hub_ratio_;
  dopts.hub_selection = options_.hub_selection;
  BEPI_ASSIGN_OR_RETURN(dec_, BuildDecomposition(g, dopts, &budget));

  info_ = BepiPreprocessInfo();
  info_.n1 = dec_.n1;
  info_.n2 = dec_.n2;
  info_.n3 = dec_.n3;
  info_.num_blocks = static_cast<index_t>(dec_.block_sizes.size());
  info_.slashburn_iterations = dec_.slashburn_iterations;
  info_.schur_nnz = dec_.schur.nnz();
  info_.h22_nnz = dec_.h22.nnz();
  info_.product_nnz = dec_.product_nnz;
  info_.reorder_seconds = dec_.reorder_seconds;
  info_.build_seconds = dec_.build_seconds;
  info_.factor_seconds = dec_.factor_seconds;
  info_.schur_seconds = dec_.schur_seconds;

  ilu_.reset();
  if (options_.mode == BepiMode::kPreconditioned && dec_.n2 > 0) {
    Timer ilu_timer;
    // The ILU(0) factors have the same footprint as S (paper Section 3.5).
    BEPI_RETURN_IF_ERROR(
        budget.Charge(dec_.schur.ByteSize(), "ILU(0) factors of S"));
    Result<Ilu0> ilu = Ilu0::Factor(dec_.schur);
    if (ilu.ok()) {
      ilu_ = std::move(ilu).value();
    } else if (options_.enable_fallbacks &&
               ilu.status().code() == StatusCode::kFailedPrecondition) {
      // Breakdown (zero/tiny pivot): degrade to unpreconditioned queries
      // rather than failing preprocessing; the query-phase chain starts at
      // the Jacobi hop.
      BEPI_LOG(Warning) << "ILU(0) breakdown, continuing unpreconditioned: "
                        << ilu.status().ToString();
      info_.ilu_skipped = true;
    } else {
      return ilu.status();
    }
    info_.ilu_seconds = ilu_timer.Seconds();
  }
  inverse_perm_ = InversePermutation(dec_.perm);
  preprocess_seconds_ = total_timer.Seconds();
  preprocessed_ = true;
  return Status::Ok();
}

Result<Vector> BepiSolver::Query(index_t seed, QueryStats* stats) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= dec_.n) {
    return Status::OutOfRange("seed out of range");
  }
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2, n3 = dec_.n3;

  // Partitioned starting vector: c*q has a single entry at the reordered
  // seed position (Algorithm 4, lines 1-2).
  const index_t pos = dec_.perm[static_cast<std::size_t>(seed)];
  Vector cq1(static_cast<std::size_t>(n1), 0.0);
  Vector cq2(static_cast<std::size_t>(n2), 0.0);
  Vector cq3(static_cast<std::size_t>(n3), 0.0);
  if (pos < n1) {
    cq1[static_cast<std::size_t>(pos)] = c;
  } else if (pos < n1 + n2) {
    cq2[static_cast<std::size_t>(pos - n1)] = c;
  } else {
    cq3[static_cast<std::size_t>(pos - n1 - n2)] = c;
  }
  return SolveFromSlices(cq1, cq2, cq3, stats);
}

Result<Vector> BepiSolver::QueryVector(const Vector& q,
                                       QueryStats* stats) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != dec_.n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2;
  Vector cq1(static_cast<std::size_t>(dec_.n1), 0.0);
  Vector cq2(static_cast<std::size_t>(dec_.n2), 0.0);
  Vector cq3(static_cast<std::size_t>(dec_.n3), 0.0);
  for (index_t u = 0; u < dec_.n; ++u) {
    const real_t v = q[static_cast<std::size_t>(u)];
    if (v == 0.0) continue;
    const index_t pos = dec_.perm[static_cast<std::size_t>(u)];
    if (pos < n1) {
      cq1[static_cast<std::size_t>(pos)] = c * v;
    } else if (pos < n1 + n2) {
      cq2[static_cast<std::size_t>(pos - n1)] = c * v;
    } else {
      cq3[static_cast<std::size_t>(pos - n1 - n2)] = c * v;
    }
  }
  return SolveFromSlices(cq1, cq2, cq3, stats);
}

Result<Vector> BepiSolver::SolveFromSlices(const Vector& cq1,
                                           const Vector& cq2,
                                           const Vector& cq3,
                                           QueryStats* stats) const {
  Timer timer;
  const index_t n1 = dec_.n1, n2 = dec_.n2, n3 = dec_.n3;

  // q2~ = c q2 - H21 (U1^{-1} (L1^{-1} (c q1)))  (Algorithm 4, line 3).
  Vector q2_tilde = cq2;
  if (n1 > 0) {
    const Vector h11inv_cq1 = dec_.ApplyH11Inverse(cq1);
    dec_.h21.MultiplyAdd(-1.0, h11inv_cq1, &q2_tilde);
  }

  ResilientSolveOptions ropts;
  ropts.tol = options_.tolerance;
  ropts.max_iters = options_.max_iterations;
  ropts.gmres_restart = options_.gmres_restart;
  ropts.enable_fallbacks = options_.enable_fallbacks;

  // Solve S r2 = q2~ through the degradation chain (line 4).
  QueryReport report;
  Vector r1, r3;
  Vector r2(static_cast<std::size_t>(n2), 0.0);
  bool back_substitute = true;
  if (n2 > 0) {
    Result<Vector> schur_solve = [&]() -> Result<Vector> {
      if (options_.inner_solver == BepiInnerSolver::kBicgstab) {
        // Ablation path: BiCGSTAB as the primary inner solver. A failure
        // still drops into the global power fallback below.
        SolveStats ss;
        BicgstabOptions bi;
        bi.tol = options_.tolerance;
        bi.max_iters = options_.max_iterations;
        CsrOperator op(dec_.schur);
        const Preconditioner* m = ilu_.has_value() ? &*ilu_ : nullptr;
        BEPI_ASSIGN_OR_RETURN(Vector x, Bicgstab(op, q2_tilde, bi, &ss, m));
        SolveAttempt attempt;
        attempt.stage = m != nullptr ? "ilu0+bicgstab" : "bicgstab";
        attempt.outcome = ss.outcome;
        attempt.iterations = ss.iterations;
        attempt.residual = ss.relative_residual;
        report.attempts.push_back(attempt);
        report.final_outcome = ss.outcome;
        if (!ss.converged) {
          return Status::NotConverged(
              "BiCGSTAB Schur solve ended with " +
              std::string(SolveOutcomeName(ss.outcome)));
        }
        return x;
      }
      ResilientSchurSolver schur_solver(dec_.schur, preconditioner(), ropts);
      return schur_solver.Solve(q2_tilde, &report);
    }();
    if (schur_solve.ok()) {
      r2 = std::move(schur_solve).value();
    } else if (schur_solve.status().code() == StatusCode::kNotConverged &&
               options_.enable_fallbacks && SupportsGlobalPowerFallback(dec_)) {
      // Hop 4: every Krylov stage failed; solve the original reordered
      // system H r = c q by power iteration, which always converges for
      // RWR. The back-substitution lines are skipped — the fallback
      // produces the full vector directly.
      Vector cq;
      cq.reserve(static_cast<std::size_t>(dec_.n));
      cq.insert(cq.end(), cq1.begin(), cq1.end());
      cq.insert(cq.end(), cq2.begin(), cq2.end());
      cq.insert(cq.end(), cq3.begin(), cq3.end());
      BEPI_ASSIGN_OR_RETURN(Vector r,
                            GlobalPowerFallback(dec_, cq, ropts, &report));
      auto at = [&r](index_t i) {
        return r.begin() + static_cast<std::ptrdiff_t>(i);
      };
      r1.assign(at(0), at(n1));
      r2.assign(at(n1), at(n1 + n2));
      r3.assign(at(n1 + n2), at(dec_.n));
      back_substitute = false;
    } else {
      return schur_solve.status();
    }
  }

  if (back_substitute) {
    // r1 = U1^{-1} (L1^{-1} (c q1 - H12 r2))  (line 5).
    if (n1 > 0) {
      Vector rhs1 = cq1;
      dec_.h12.MultiplyAdd(-1.0, r2, &rhs1);
      r1 = dec_.ApplyH11Inverse(rhs1);
    }
    // r3 = c q3 - H31 r1 - H32 r2  (line 6).
    r3 = cq3;
    if (n3 > 0) {
      if (n1 > 0) dec_.h31.MultiplyAdd(-1.0, r1, &r3);
      if (n2 > 0) dec_.h32.MultiplyAdd(-1.0, r2, &r3);
    }
  }

  // Concatenate and undo the node reordering (line 7).
  Vector result(static_cast<std::size_t>(dec_.n));
  for (index_t i = 0; i < n1; ++i) {
    result[static_cast<std::size_t>(inverse_perm_[static_cast<std::size_t>(i)])] =
        r1[static_cast<std::size_t>(i)];
  }
  for (index_t i = 0; i < n2; ++i) {
    result[static_cast<std::size_t>(
        inverse_perm_[static_cast<std::size_t>(n1 + i)])] =
        r2[static_cast<std::size_t>(i)];
  }
  for (index_t i = 0; i < n3; ++i) {
    result[static_cast<std::size_t>(
        inverse_perm_[static_cast<std::size_t>(n1 + n2 + i)])] =
        r3[static_cast<std::size_t>(i)];
  }
  if (stats != nullptr) {
    stats->seconds = timer.Seconds();
    if (!report.attempts.empty()) {
      const SolveAttempt& producing = report.attempts.back();
      stats->iterations = producing.iterations;
      stats->residual = producing.residual;
      stats->outcome = producing.outcome;
    } else {
      stats->iterations = 0;
      stats->residual = 0.0;
      stats->outcome = SolveOutcome::kConverged;
    }
    stats->report = std::move(report);
  }
  return result;
}

std::uint64_t BepiSolver::PreprocessedBytes() const {
  std::uint64_t bytes = dec_.CommonBytes() + dec_.schur.ByteSize();
  if (ilu_.has_value()) bytes += ilu_->ByteSize();
  return bytes;
}

namespace {

// v2 appends H11 and H22 so loaded models can take the global
// power-iteration fallback; v1 models are still readable (the fallback is
// then unavailable).
constexpr char kModelHeaderV1[] = "BEPI-MODEL v1";
constexpr char kModelHeaderV2[] = "BEPI-MODEL v2";

}  // namespace

Status BepiSolver::Save(std::ostream& out) const {
  if (!preprocessed_) {
    return Status::FailedPrecondition("nothing to save: Preprocess not called");
  }
  out << kModelHeaderV2 << "\n";
  out.precision(17);
  out << static_cast<int>(options_.mode) << " " << options_.restart_prob
      << " " << options_.tolerance << " " << options_.max_iterations << " "
      << options_.gmres_restart << " " << effective_hub_ratio_ << "\n";
  out << dec_.n << " " << dec_.n1 << " " << dec_.n2 << " " << dec_.n3 << "\n";
  for (index_t i = 0; i < dec_.n; ++i) {
    out << dec_.perm[static_cast<std::size_t>(i)]
        << (i + 1 == dec_.n ? '\n' : ' ');
  }
  // Query-phase matrices in a fixed order: the paper's stored set, then
  // the v2 additions H11 and H22 (power-fallback operands).
  for (const CsrMatrix* m : {&dec_.l1_inv, &dec_.u1_inv, &dec_.h12, &dec_.h21,
                             &dec_.h31, &dec_.h32, &dec_.schur, &dec_.h11,
                             &dec_.h22}) {
    BEPI_RETURN_IF_ERROR(WriteMatrixMarket(*m, out));
  }
  if (!out) return Status::IoError("failed writing BePI model stream");
  return Status::Ok();
}

Status BepiSolver::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return Save(out);
}

Result<BepiSolver> BepiSolver::Load(std::istream& in) {
  std::string header;
  if (!std::getline(in, header) ||
      (header != kModelHeaderV1 && header != kModelHeaderV2)) {
    return Status::IoError("not a BePI model stream (bad header)");
  }
  const bool v2 = header == kModelHeaderV2;
  BepiOptions options;
  int mode = 0;
  real_t hub_ratio = 0.0;
  in >> mode >> options.restart_prob >> options.tolerance >>
      options.max_iterations >> options.gmres_restart >> hub_ratio;
  if (!in || mode < 0 || mode > 2) {
    return Status::IoError("malformed BePI model options");
  }
  options.mode = static_cast<BepiMode>(mode);
  options.hub_ratio = hub_ratio;

  BepiSolver solver(options);
  HubSpokeDecomposition& dec = solver.dec_;
  in >> dec.n >> dec.n1 >> dec.n2 >> dec.n3;
  if (!in || dec.n < 0 || dec.n1 < 0 || dec.n2 < 0 || dec.n3 < 0 ||
      dec.n1 + dec.n2 + dec.n3 != dec.n) {
    return Status::IoError("malformed BePI model partition sizes");
  }
  dec.perm.resize(static_cast<std::size_t>(dec.n));
  for (index_t i = 0; i < dec.n; ++i) {
    in >> dec.perm[static_cast<std::size_t>(i)];
  }
  if (!in || !IsPermutation(dec.perm)) {
    return Status::IoError("malformed BePI model permutation");
  }
  in.ignore(1, '\n');
  for (CsrMatrix* m : {&dec.l1_inv, &dec.u1_inv, &dec.h12, &dec.h21, &dec.h31,
                       &dec.h32, &dec.schur}) {
    BEPI_ASSIGN_OR_RETURN(*m, ReadMatrixMarket(in));
  }
  if (v2) {
    BEPI_ASSIGN_OR_RETURN(dec.h11, ReadMatrixMarket(in));
    BEPI_ASSIGN_OR_RETURN(dec.h22, ReadMatrixMarket(in));
  }
  // Shape checks tie the matrices to the declared partition sizes.
  if (dec.l1_inv.rows() != dec.n1 || dec.u1_inv.rows() != dec.n1 ||
      dec.h12.rows() != dec.n1 || dec.h12.cols() != dec.n2 ||
      dec.h21.rows() != dec.n2 || dec.h21.cols() != dec.n1 ||
      dec.h31.rows() != dec.n3 || dec.h31.cols() != dec.n1 ||
      dec.h32.rows() != dec.n3 || dec.h32.cols() != dec.n2 ||
      dec.schur.rows() != dec.n2 || dec.schur.cols() != dec.n2) {
    return Status::IoError("BePI model matrices inconsistent with sizes");
  }
  if (v2 && (dec.h11.rows() != dec.n1 || dec.h11.cols() != dec.n1 ||
             dec.h22.rows() != dec.n2 || dec.h22.cols() != dec.n2)) {
    return Status::IoError("BePI model matrices inconsistent with sizes");
  }
  bool ilu_skipped = false;
  if (options.mode == BepiMode::kPreconditioned && dec.n2 > 0) {
    Result<Ilu0> ilu = Ilu0::Factor(dec.schur);
    if (ilu.ok()) {
      solver.ilu_ = std::move(ilu).value();
    } else if (options.enable_fallbacks &&
               ilu.status().code() == StatusCode::kFailedPrecondition) {
      BEPI_LOG(Warning) << "ILU(0) breakdown on load, continuing "
                        << "unpreconditioned: " << ilu.status().ToString();
      ilu_skipped = true;
    } else {
      return ilu.status();
    }
  }
  solver.inverse_perm_ = InversePermutation(dec.perm);
  // Only the structural fields survive a round-trip; the timing breakdown
  // and H22/product counts belong to the original preprocessing run.
  solver.info_ = BepiPreprocessInfo();
  solver.info_.n1 = dec.n1;
  solver.info_.n2 = dec.n2;
  solver.info_.n3 = dec.n3;
  solver.info_.schur_nnz = dec.schur.nnz();
  solver.info_.ilu_skipped = ilu_skipped;
  solver.preprocessed_ = true;
  return solver;
}

Result<BepiSolver> BepiSolver::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return Load(in);
}

}  // namespace bepi
