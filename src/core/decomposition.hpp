// The node reordering + block partition + H11 factorization + Schur
// complement pipeline shared by BePI (which solves S iteratively) and the
// Bear baseline (which inverts S). Implements Sections 3.2-3.4 of the
// paper: deadend reordering, SlashBurn hub-and-spoke reordering of Ann,
// partitioning of H per Equation (5), per-block LU of the block-diagonal
// H11 with explicitly inverted triangular factors, and
// S = H22 - H21 (U1^{-1} (L1^{-1} H12)).
#ifndef BEPI_CORE_DECOMPOSITION_HPP_
#define BEPI_CORE_DECOMPOSITION_HPP_

#include <string>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "core/budget.hpp"
#include "graph/graph.hpp"
#include "graph/slashburn.hpp"
#include "sparse/csr.hpp"
#include "sparse/kernel.hpp"
#include "sparse/permute.hpp"

namespace bepi {

struct DecompositionOptions {
  real_t restart_prob = 0.05;
  /// SlashBurn hub selection ratio k. BePI-B uses 0.001 (small n2); BePI-S
  /// and BePI use ~0.2 (minimizes |S|); see paper Figure 4 / Table 2.
  real_t hub_ratio = 0.2;
  /// Hub selection strategy (kRandom is the ablation control).
  SlashBurnOptions::HubSelection hub_selection =
      SlashBurnOptions::HubSelection::kDegree;
  /// Cap on SlashBurn iterations (0 = none); ablation knob.
  index_t slashburn_max_iterations = 0;
  /// Minimum seconds between *incremental* checkpoints (SlashBurn rounds,
  /// partial LU progress) when a CheckpointManager is supplied. Stage-
  /// boundary checkpoints are always written. 0 snapshots every round and
  /// every block (tests); the default keeps overhead well under 5% on
  /// graphs small enough that stages finish quickly anyway.
  double checkpoint_interval_seconds = 0.25;
  /// Cooperative cancellation (e.g. SIGINT via common/shutdown.hpp),
  /// polled at stage boundaries, SlashBurn round boundaries and per-block
  /// LU progress. On expiry the pipeline *first commits the current stage's
  /// checkpoint* (when a CheckpointManager is supplied) and then returns
  /// the token's Status, so an interrupted preprocess resumes from where
  /// it stopped rather than from the last interval-driven snapshot. May be
  /// null.
  const CancelToken* cancel = nullptr;
};

struct HubSpokeDecomposition {
  index_t n = 0;   // total nodes
  index_t n1 = 0;  // spokes
  index_t n2 = 0;  // hubs (incl. final GCC)
  index_t n3 = 0;  // deadends

  /// old node id -> new (reordered) id for the full graph.
  Permutation perm;
  /// Sizes of the diagonal blocks of H11.
  std::vector<index_t> block_sizes;
  index_t slashburn_iterations = 0;

  /// Partitions of the reordered H (Equation (5)). H13/H23 are zero and
  /// H33 = I by construction; they are not stored.
  CsrMatrix h11, h12, h21, h22, h31, h32;

  /// Block-diagonal sparse inverses of the LU factors of H11.
  CsrMatrix l1_inv, u1_inv;

  /// S = H22 - H21 H11^{-1} H12.
  CsrMatrix schur;
  /// Non-zeros of the product H21 H11^{-1} H12 before subtraction (the
  /// other side of the Figure 4 trade-off; |H22| is h22.nnz()).
  index_t product_nnz = 0;

  // Preprocessing time breakdown (seconds).
  double reorder_seconds = 0.0;
  double build_seconds = 0.0;
  double factor_seconds = 0.0;
  double schur_seconds = 0.0;

  /// U1^{-1} (L1^{-1} v) — applies H11^{-1} to a length-n1 vector.
  Vector ApplyH11Inverse(const Vector& v) const;

  /// Bytes of the matrices a block-elimination method keeps for queries
  /// (excluding S itself, whose treatment differs between BePI and Bear).
  std::uint64_t CommonBytes() const;
};

/// Kernel-ready views over the query-phase matrices of a decomposition
/// (sparse/kernel.hpp): one Bind decision covers all of them, so a query
/// never mixes compact and wide kernels. Non-owning — the decomposition
/// must outlive this object and not be structurally modified.
struct DecompositionKernels {
  /// The resolved path (kWide or kCompact, never kAuto) and a short
  /// human-readable reason, surfaced in the preprocessing log line and the
  /// CLI output.
  KernelPath path = KernelPath::kWide;
  std::string reason;

  KernelCsr l1_inv, u1_inv, h12, h21, h31, h32, schur;

  /// U1^{-1} (L1^{-1} v) through the bound kernels.
  Vector ApplyH11Inverse(const Vector& v) const;

  /// Panel form over k row-major right-hand sides (sparse/kernel.hpp
  /// MultiplyMulti): `v` and `out` are n1 x k row-major, `tmp` is caller
  /// scratch (resized here). Each panel column is bit-identical to
  /// ApplyH11Inverse on that column alone.
  void ApplyH11InverseMulti(const real_t* v, index_t k, real_t* out,
                            std::vector<real_t>* tmp) const;

  /// Bytes owned on top of the decomposition (the compact index sidecars).
  std::uint64_t OwnedBytes() const;
};

/// Binds kernels for the query path: compact when `requested` is kCompact
/// or kAuto and *every* bound matrix fits the 32-bit limits, wide
/// otherwise (a kCompact request that does not fit falls back to wide).
DecompositionKernels BindDecompositionKernels(const HubSpokeDecomposition& dec,
                                              KernelPath requested);

class CheckpointManager;

/// Runs the full pipeline. `budget` (may be null) gates the footprint of
/// each produced matrix. With a non-null `checkpoints` the expensive
/// stages are snapshotted at their boundaries (deadend partition, each
/// SlashBurn round, per-diagonal-block LU progress, the Schur complement)
/// and any valid snapshot found on entry is resumed instead of recomputed
/// — a killed preprocessing run restarted with the same graph, options and
/// checkpoint directory produces a bit-identical decomposition.
Result<HubSpokeDecomposition> BuildDecomposition(
    const Graph& g, const DecompositionOptions& options, MemoryBudget* budget,
    CheckpointManager* checkpoints = nullptr);

}  // namespace bepi

#endif  // BEPI_CORE_DECOMPOSITION_HPP_
