// Bear baseline (Shin et al. [38]): the state-of-the-art block-elimination
// preprocessing method the paper compares against. Bear shares BePI's node
// reordering and block elimination but *inverts* the Schur complement in
// the preprocessing phase. Its query phase is pure matrix-vector products
// (fast); its memory is dominated by the dense n2 x n2 inverse S^{-1}
// (which is why it cannot scale — paper Figures 1, 5, 11).
#ifndef BEPI_CORE_BEAR_HPP_
#define BEPI_CORE_BEAR_HPP_

#include "core/decomposition.hpp"
#include "core/rwr.hpp"
#include "sparse/dense.hpp"

namespace bepi {

struct BearOptions : RwrOptions {
  /// SlashBurn hub ratio; Bear's published setting is 0.001 (small n2, so
  /// the dense S^{-1} stays as small as possible).
  real_t hub_ratio = 0.001;
};

class BearSolver final : public RwrSolver {
 public:
  explicit BearSolver(BearOptions options) : options_(options) {}

  std::string name() const override { return "Bear"; }
  Status Preprocess(const Graph& g) override;
  Result<Vector> Query(index_t seed, QueryStats* stats = nullptr) const override;
  Result<Vector> QueryVector(const Vector& q,
                             QueryStats* stats = nullptr) const override;
  std::uint64_t PreprocessedBytes() const override;

  const HubSpokeDecomposition& decomposition() const { return dec_; }

 private:
  Result<Vector> SolveFromSlices(const Vector& cq1, const Vector& cq2,
                                 const Vector& cq3, QueryStats* stats) const;

  BearOptions options_;
  HubSpokeDecomposition dec_;
  DenseMatrix schur_inverse_;
  Permutation inverse_perm_;
  bool preprocessed_ = false;
};

}  // namespace bepi

#endif  // BEPI_CORE_BEAR_HPP_
