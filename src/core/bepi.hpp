// BePI: the paper's main contribution. A block-elimination preprocessing
// method whose only remaining linear system — over the Schur complement of
// the block-diagonal spoke block H11 — is solved per query by (optionally
// ILU(0)-preconditioned) GMRES instead of being inverted.
//
// Three variants (paper Section 3.1):
//   kBasic          BePI-B: block elimination + iterative Schur solve,
//                   hub ratio chosen small (0.001) to minimize n2.
//   kSparsified     BePI-S: hub ratio ~0.2 minimizing |S| (Section 3.4).
//   kPreconditioned BePI:   adds the ILU(0) preconditioner (Section 3.5).
#ifndef BEPI_CORE_BEPI_HPP_
#define BEPI_CORE_BEPI_HPP_

#include <iosfwd>
#include <memory>
#include <optional>

#include "common/cancel.hpp"
#include "core/decomposition.hpp"
#include "core/rwr.hpp"
#include "core/topk.hpp"
#include "solver/ilu0.hpp"

namespace bepi {

struct GmresWorkspace;
class McWalkEngine;

/// Configuration of the Monte-Carlo terminal stage (see AttachMcFallback).
/// Per-query parameters (restart probability, cancellation, partial-result
/// policy) come from the query itself; these are the walk-budget knobs.
struct McFallbackOptions {
  std::uint64_t walks = 200'000;
  double delta = 0.01;
  std::uint64_t seed = 20170514;
};

enum class BepiMode { kBasic, kSparsified, kPreconditioned };

const char* BepiModeName(BepiMode mode);

/// Krylov method used for the Schur-complement solve in the query phase.
/// The paper uses GMRES; BiCGSTAB is a short-recurrence alternative with
/// constant per-iteration cost (see bench_ablation_solvers).
enum class BepiInnerSolver { kGmres, kBicgstab };

struct BepiOptions : RwrOptions {
  BepiMode mode = BepiMode::kPreconditioned;
  /// SlashBurn hub selection ratio k; 0 selects the paper's default for
  /// the mode (0.001 for kBasic, 0.2 otherwise).
  real_t hub_ratio = 0.0;
  /// GMRES restart length for the Schur-complement solve.
  index_t gmres_restart = 100;
  BepiInnerSolver inner_solver = BepiInnerSolver::kGmres;
  /// Hub selection strategy (kRandom is the ablation control).
  SlashBurnOptions::HubSelection hub_selection =
      SlashBurnOptions::HubSelection::kDegree;
  /// Run the degradation chain (core/resilient.hpp) when the primary
  /// Schur solve fails, ending in global power iteration. When false a
  /// failed solve surfaces as Status kNotConverged (the pre-resilience
  /// behavior, kept for ablations).
  bool enable_fallbacks = true;
  /// Cooperative cancellation for *preprocessing* (the CLI links the
  /// SIGINT/SIGTERM shutdown flag here). Checked at stage boundaries; with
  /// checkpointing enabled the current stage is committed before the
  /// Cancelled/DeadlineExceeded Status is returned. Not owned; may be
  /// null. Query-side cancellation goes through QueryControl instead.
  const CancelToken* cancel = nullptr;
};

/// Per-query runtime controls (deadline/cancellation), as opposed to the
/// numeric configuration in BepiOptions. A default-constructed control is
/// inert, and a null/never-expiring token leaves the solve bit-identical
/// to an uncontrolled one — the token is only *polled* at restart-cycle
/// and power-iteration boundaries, never consulted by the numerics.
struct QueryControl {
  /// Cooperative cancellation/deadline. May be null. Not owned; must
  /// outlive the query.
  const CancelToken* cancel = nullptr;
  /// What to do when `cancel` expires mid-solve. False: the query returns
  /// the token's Status (kDeadlineExceeded or kCancelled) and no vector.
  /// True: back-substitution completes from the best Schur iterate and
  /// the query returns that partial vector with stats->outcome ==
  /// kCancelled and stats->residual as the explicit error bound of the
  /// interrupted inner solve.
  bool allow_partial = false;
  /// Trace context from the serve path: attached to the query's trace
  /// spans and flight-recorder stage-hop events so one request can be
  /// followed across the whole degradation chain. Not owned; must outlive
  /// the query. May be null (non-serve callers).
  const char* request_id = nullptr;
  /// Bounded-error approximate mode: when > 0 the Schur solve stops at
  /// this relative residual tolerance instead of the model's, and a clean
  /// solve computes its true residual and reports the propagated sup-norm
  /// per-score bound in QueryStats::error_bound (core/topk.hpp
  /// ScoreErrorBound — the bound crosscheck verifies against the MC
  /// oracle). 0 leaves the solve bit-identical to the default path.
  real_t eps = 0.0;
  /// Seed the Schur solve's initial iterate from a cheap Monte-Carlo
  /// estimate (the attached AttachMcFallback engine) instead of zero —
  /// ROADMAP item 3's warm start, off by default because a nonzero x0
  /// changes the iterate sequence (fewer restart cycles, different bits).
  /// Ignored when no MC engine is attached.
  bool warm_start_mc = false;
};

/// One seed of a coalesced multi-seed query (BepiSolver::QueryMulti):
/// the seed plus the same per-request controls Query takes.
struct MultiQueryItem {
  index_t seed = 0;
  QueryControl control;
  /// Top-k execution request (core/topk.hpp). topk.k == 0 (the default)
  /// answers densely; topk.k >= 1 makes the result's `topk` field the
  /// deliverable (scores stays empty). Exact-mode top-k items still join
  /// the blocked Schur solve — only their back-substitution is pruned per
  /// column — while eps-mode items solve solo (their truncated tolerance
  /// must not leak into coalesced neighbors).
  TopKOptions topk;
};

/// Per-seed verdict of QueryMulti. `scores`/`stats` are meaningful only
/// when `status` is ok, and are — by contract — bit-identical to what
/// Query(seed, ...) returns for the same seed: `coalesced` columns were
/// solved by the lockstep block path whose per-column arithmetic matches
/// the scalar solve exactly, and non-coalesced columns were literally
/// re-solved through the scalar path (the full degradation chain).
struct MultiQueryResult {
  Status status = Status::Ok();
  Vector scores;
  QueryStats stats;
  bool coalesced = false;
  /// Filled (and `scores` left empty) when the item requested top-k.
  TopKResult topk;
};

/// Structural metadata produced by preprocessing; consumed by the
/// benchmark harnesses (Tables 2-4, Figures 4, 6, 8).
struct BepiPreprocessInfo {
  index_t n1 = 0, n2 = 0, n3 = 0;
  index_t num_blocks = 0;
  index_t slashburn_iterations = 0;
  index_t schur_nnz = 0;
  index_t h22_nnz = 0;
  index_t product_nnz = 0;  // |H21 H11^-1 H12|
  double reorder_seconds = 0.0;
  double build_seconds = 0.0;
  double factor_seconds = 0.0;
  double schur_seconds = 0.0;
  double ilu_seconds = 0.0;
  /// True when ILU(0) factorization of S broke down and preprocessing
  /// continued without the preconditioner (enable_fallbacks only).
  bool ilu_skipped = false;
  // Checkpointing overhead (zero when preprocessing ran without a
  // CheckpointManager); lets bench_fig1_preprocessing report the cost of
  // kill-safety against the paper's preprocessing-time figures.
  double checkpoint_seconds = 0.0;
  index_t checkpoints_written = 0;
  index_t checkpoints_resumed = 0;
};

class BepiSolver final : public RwrSolver {
 public:
  explicit BepiSolver(BepiOptions options);

  std::string name() const override;
  Status Preprocess(const Graph& g) override;
  /// Kill-safe variant: with a non-null manager, preprocessing stages are
  /// checkpointed (and resumed) under a fingerprint derived from the graph
  /// and the options, so a SIGKILLed run restarted with the same arguments
  /// completes from the last durable stage and produces a bit-identical
  /// model. See core/checkpoint.hpp.
  Status Preprocess(const Graph& g, CheckpointManager* checkpoints);
  Result<Vector> Query(index_t seed, QueryStats* stats = nullptr) const override;
  Result<Vector> QueryVector(const Vector& q,
                             QueryStats* stats = nullptr) const override;
  /// Workspace-reusing variants for steady-state query loops: `workspace`
  /// (may be null) holds the GMRES scratch buffers across solves so no
  /// per-query heap allocation happens beyond the returned vector. One
  /// workspace per concurrent caller (see solver/gmres.hpp).
  Result<Vector> Query(index_t seed, QueryStats* stats,
                       GmresWorkspace* workspace) const;
  Result<Vector> QueryVector(const Vector& q, QueryStats* stats,
                             GmresWorkspace* workspace) const;
  /// Deadline-aware variants (see QueryControl): the serving path. The
  /// workspace is left reusable whatever the outcome — cancellation only
  /// ever stops between restart cycles, never mid-buffer.
  Result<Vector> Query(index_t seed, QueryStats* stats,
                       GmresWorkspace* workspace,
                       const QueryControl& control) const;
  Result<Vector> QueryVector(const Vector& q, QueryStats* stats,
                             GmresWorkspace* workspace,
                             const QueryControl& control) const;
  /// Coalesced multi-seed query: answers every item, streaming the Schur
  /// matrix ONCE per block-GMRES step for all seeds (sparse/kernel.hpp
  /// SpMM panels) instead of once per seed — the bandwidth amortization
  /// the serve batcher (server/server.hpp) is built on. Only the primary
  /// preconditioned GMRES hop is blocked; any seed whose column does not
  /// converge there (stagnation, NaN, cancellation, injected faults,
  /// breakdown) is transparently re-solved through the ordinary scalar
  /// Query path — its own degradation chain, its own QueryControl — so a
  /// misbehaving seed degrades alone and every returned vector is
  /// bit-identical to a solo Query of the same seed. The returned Status
  /// covers batch-level preconditions only; per-seed failures land in
  /// each MultiQueryResult::status.
  Status QueryMulti(const std::vector<MultiQueryItem>& items,
                    std::vector<MultiQueryResult>* results) const;
  /// Top-k query (core/topk.hpp): a converged Schur solve followed by
  /// pruned back-substitution that touches only rows which could enter the
  /// top k. Exact mode returns entries byte-identical to
  /// TopK(Query(seed), k, opts.exclude); eps mode stops the Schur solve at
  /// opts.eps and reports the honest per-score bound in
  /// TopKResult::error_bound (mirrored into stats->error_bound). When the
  /// solve degrades off the clean converged path (fallback hops, partial
  /// results, the BiCGSTAB ablation, power/MC stages) the query still
  /// answers — a full solve is sorted instead, with the producing
  /// attempt's residual as the bound and TopKResult::pruned == false.
  Result<TopKResult> QueryTopK(index_t seed, const TopKOptions& opts,
                               QueryStats* stats = nullptr,
                               GmresWorkspace* workspace = nullptr,
                               const QueryControl& control = {}) const;
  std::uint64_t PreprocessedBytes() const override;

  /// Arms the Monte-Carlo walk engine (engine/mc) as the terminal stage of
  /// the degradation chain: when every linear-algebra stage — including
  /// the global power fallback — has failed, the query is answered by
  /// simulating walks on the raw graph, with the estimate's confidence
  /// half-width recorded as the attempt's residual (the explicit error
  /// bound). The engine must be built over the same graph the model was
  /// preprocessed from (node counts are checked) and must outlive the
  /// solver. Pass nullptr to detach.
  Status AttachMcFallback(const McWalkEngine* engine,
                          McFallbackOptions options = {});
  const McWalkEngine* mc_fallback() const { return mc_; }

  /// Where the active ILU(0) level schedules came from, e.g.
  /// "built (preprocess)", "model (validated)" or "rebuilt (model
  /// schedules failed validation)" — surfaced by `bepi_cli verify-model`
  /// so operators can tell a stale schedule section from a healthy one.
  const std::string& kernel_schedule_origin() const {
    return kernel_schedule_origin_;
  }

  const BepiPreprocessInfo& info() const { return info_; }
  const BepiOptions& options() const { return options_; }
  const HubSpokeDecomposition& decomposition() const { return dec_; }
  /// The ILU(0) preconditioner (present only in kPreconditioned mode).
  const Ilu0* preconditioner() const {
    return ilu_.has_value() ? &*ilu_ : nullptr;
  }
  /// The bound kernel layer (sparse/kernel.hpp): path, selection reason
  /// and the per-matrix views. Null before Preprocess/Load.
  const DecompositionKernels* kernels() const { return kernels_.get(); }
  real_t effective_hub_ratio() const { return effective_hub_ratio_; }

  /// Serializes the preprocessed model (options, permutation and the
  /// query-phase matrices) to a text stream. Preprocessing runs once and
  /// the model can then be shipped to query servers.
  Status Save(std::ostream& out) const;
  Status SaveFile(const std::string& path) const;

  /// Restores a solver from Save's output. The ILU(0) preconditioner is
  /// recomputed from S (cheaper than shipping it; same O(|S|) cost).
  static Result<BepiSolver> Load(std::istream& in);
  static Result<BepiSolver> LoadFile(const std::string& path);

 private:
  /// Runs Algorithm 4 given the already-partitioned scaled start vector
  /// (c*q sliced along [n1 | n2 | n3] in reordered ids). With a non-null
  /// `topk`, a Schur iterate that reaches back-substitution is answered by
  /// the pruned top-k path instead: `*topk_out` is filled (pruned == true)
  /// and the returned vector is empty. Degraded paths that produce the
  /// full vector directly (power, MC) ignore `topk` and return the vector
  /// for the caller to sort.
  Result<Vector> SolveFromSlices(const Vector& cq1, const Vector& cq2,
                                 const Vector& cq3, QueryStats* stats,
                                 GmresWorkspace* workspace,
                                 const QueryControl& control,
                                 const TopKOptions* topk = nullptr,
                                 TopKResult* topk_out = nullptr) const;

  /// Shared eps-mode epilogue: computes the true Schur residual of `r2`
  /// against `q2_tilde` and returns the propagated sup-norm score bound.
  real_t EpsErrorBound(const Vector& q2_tilde, const Vector& r2) const;

  /// Cheap MC estimate of the hub slice used as the GMRES initial iterate
  /// (QueryControl::warm_start_mc). Returns false (x0 untouched) when no
  /// engine is attached or the estimate fails.
  bool McWarmStart(const Vector& cq1, const Vector& cq2, const Vector& cq3,
                   const QueryControl& control, Vector* x0) const;

  /// Sectioned, per-section-checksummed format (header already consumed).
  static Result<BepiSolver> LoadV3(std::istream& in);
  /// Shared tail of every Load path: recompute the ILU(0) preconditioner,
  /// invert the permutation, rebuild the structural info fields.
  Status FinalizeLoaded();
  /// Resolves --kernel/BEPI_KERNEL against the matrices, binds the
  /// DecompositionKernels views, arms the ILU(0) level schedules (adopting
  /// loaded ones when valid) and publishes the model.kernel_path gauge.
  /// Runs at the end of Preprocess and of every Load; `from_load` only
  /// labels kernel_schedule_origin() honestly.
  void BindQueryKernels(bool from_load);

  /// Hop 5: answers the query via the attached Monte-Carlo engine. `cq`
  /// is the scaled start vector in reordered ids; the returned scores are
  /// in ORIGINAL ids (the engine walks the raw graph). Appends the "mc"
  /// attempt (iterations = walks, residual = confidence half-width) to
  /// `report`.
  Result<Vector> McTerminalHop(const Vector& cq, QueryReport* report,
                               const QueryControl& control) const;

  BepiOptions options_;
  real_t effective_hub_ratio_ = 0.0;
  HubSpokeDecomposition dec_;
  std::optional<Ilu0> ilu_;
  /// Kernel views over dec_/ilu_. unique_ptr rather than a value so the
  /// solver stays movable without rebinding: the views point into vector
  /// heap buffers, which moves do not relocate.
  std::unique_ptr<DecompositionKernels> kernels_;
  /// State restored from a model's "kernel" section; consumed (and the
  /// schedules validated against the recomputed ILU factors) by
  /// BindQueryKernels.
  std::optional<KernelPath> loaded_path_;
  std::optional<LevelSchedule> loaded_lower_, loaded_upper_;
  /// Absolute-row-sum tables for top-k pruning and eps error bounds
  /// (core/topk.hpp); rebuilt alongside the kernels in BindQueryKernels.
  std::unique_ptr<TopKBoundTables> topk_tables_;
  Permutation inverse_perm_;  // new -> old
  BepiPreprocessInfo info_;
  bool preprocessed_ = false;
  std::string kernel_schedule_origin_ = "unbound";
  /// Terminal-stage walk engine (not owned; null = stage disarmed).
  const McWalkEngine* mc_ = nullptr;
  McFallbackOptions mc_fallback_options_;
};

}  // namespace bepi

#endif  // BEPI_CORE_BEPI_HPP_
