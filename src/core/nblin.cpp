#include "core/nblin.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "solver/dense_lu.hpp"

namespace bepi {
namespace {

Vector GetColumn(const DenseMatrix& m, index_t col) {
  Vector out(static_cast<std::size_t>(m.rows()));
  for (index_t r = 0; r < m.rows(); ++r) {
    out[static_cast<std::size_t>(r)] = m.At(r, col);
  }
  return out;
}

void SetColumn(DenseMatrix* m, index_t col, const Vector& values) {
  for (index_t r = 0; r < m->rows(); ++r) {
    m->At(r, col) = values[static_cast<std::size_t>(r)];
  }
}

}  // namespace

Status NbLinSolver::Preprocess(const Graph& g) {
  Timer timer;
  const index_t n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (options_.rank <= 0) {
    return Status::InvalidArgument("NB_LIN rank must be positive");
  }
  const index_t k = std::min(options_.rank, n);
  const CsrMatrix normalized = g.RowNormalizedAdjacency();
  // W = Ã^T; W x and W^T x are both available from Ã without forming W.
  auto apply_w = [&](const Vector& x) { return normalized.MultiplyTranspose(x); };
  auto apply_wt = [&](const Vector& x) { return normalized.Multiply(x); };

  // Randomized range finder with subspace iteration:
  // Y = (W W^T)^p W Omega.
  Rng rng(options_.seed);
  std::vector<Vector> columns;
  columns.reserve(static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) {
    Vector omega(static_cast<std::size_t>(n));
    for (auto& v : omega) v = rng.NextGaussian();
    Vector y = apply_w(omega);
    for (index_t p = 0; p < options_.power_iterations; ++p) {
      y = apply_w(apply_wt(y));
    }
    columns.push_back(std::move(y));
  }
  // Modified Gram-Schmidt; rank-deficient columns are dropped.
  std::vector<Vector> basis;
  for (Vector& y : columns) {
    for (const Vector& q : basis) {
      Axpy(-Dot(y, q), q, &y);
    }
    const real_t norm = Norm2(y);
    if (norm > 1e-10) {
      Scale(1.0 / norm, &y);
      basis.push_back(std::move(y));
    }
  }
  if (basis.empty()) {
    return Status::FailedPrecondition(
        "NB_LIN range finder found an empty range (graph has no edges?)");
  }
  const index_t rank = static_cast<index_t>(basis.size());
  q_basis_ = DenseMatrix(n, rank);
  for (index_t j = 0; j < rank; ++j) {
    SetColumn(&q_basis_, j, basis[static_cast<std::size_t>(j)]);
  }

  // B = Q^T W, stored as B^T = W^T Q (n x k); BQ is then k x k.
  wq_ = DenseMatrix(n, rank);
  for (index_t j = 0; j < rank; ++j) {
    SetColumn(&wq_, j, apply_wt(basis[static_cast<std::size_t>(j)]));
  }
  DenseMatrix bq(rank, rank);
  for (index_t i = 0; i < rank; ++i) {
    const Vector bt_col = GetColumn(wq_, i);
    for (index_t j = 0; j < rank; ++j) {
      bq.At(i, j) = Dot(bt_col, basis[static_cast<std::size_t>(j)]);
    }
  }
  // M = I_k - (1-c) B Q; queries need M^{-1}.
  DenseMatrix m = DenseMatrix::Identity(rank);
  m.Add(-(1.0 - options_.restart_prob), bq);
  BEPI_ASSIGN_OR_RETURN(DenseLu lu, DenseLu::Factor(m));
  core_inverse_ = lu.Inverse();
  preprocess_seconds_ = timer.Seconds();
  return Status::Ok();
}

Result<Vector> NbLinSolver::Query(index_t seed, QueryStats* stats) const {
  const index_t n = q_basis_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= n) return Status::OutOfRange("seed out of range");
  return QueryVector(StartingVector(n, seed), stats);
}

Result<Vector> NbLinSolver::QueryVector(const Vector& q,
                                        QueryStats* stats) const {
  const index_t n = q_basis_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  Timer timer;
  const real_t c = options_.restart_prob;
  const index_t rank = q_basis_.cols();
  // y = B q  (via B^T columns), z = M^{-1} y, r = c q + c (1-c) Q z.
  Vector y(static_cast<std::size_t>(rank), 0.0);
  for (index_t i = 0; i < rank; ++i) {
    real_t sum = 0.0;
    for (index_t r = 0; r < n; ++r) {
      sum += wq_.At(r, i) * q[static_cast<std::size_t>(r)];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
  Vector z = core_inverse_.Multiply(y);
  Vector result = q;
  Scale(c, &result);
  const real_t scale = c * (1.0 - c);
  for (index_t r = 0; r < n; ++r) {
    real_t sum = 0.0;
    for (index_t j = 0; j < rank; ++j) {
      sum += q_basis_.At(r, j) * z[static_cast<std::size_t>(j)];
    }
    result[static_cast<std::size_t>(r)] += scale * sum;
  }
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
  }
  return result;
}

}  // namespace bepi
