// Exact RWR via dense inversion of H: r = c H^{-1} q. Only feasible for
// small graphs; it is the ground truth of the accuracy experiments
// (paper Appendix I) and of this library's oracle tests.
#ifndef BEPI_CORE_EXACT_HPP_
#define BEPI_CORE_EXACT_HPP_

#include "core/rwr.hpp"
#include "sparse/dense.hpp"

namespace bepi {

class ExactSolver final : public RwrSolver {
 public:
  explicit ExactSolver(RwrOptions options) : options_(options) {}

  std::string name() const override { return "Exact"; }
  Status Preprocess(const Graph& g) override;
  Result<Vector> Query(index_t seed, QueryStats* stats = nullptr) const override;
  Result<Vector> QueryVector(const Vector& q,
                             QueryStats* stats = nullptr) const override;
  std::uint64_t PreprocessedBytes() const override {
    return h_inverse_.ByteSize();
  }

 private:
  RwrOptions options_;
  DenseMatrix h_inverse_;
};

}  // namespace bepi

#endif  // BEPI_CORE_EXACT_HPP_
