// Kill-safe preprocessing checkpoints. Preprocessing is the expensive
// phase the paper amortizes over millions of queries; at billion scale it
// runs for hours, and before this layer a crash anywhere inside it lost
// everything. A CheckpointManager snapshots the pipeline at stage
// boundaries (deadend reordering, each SlashBurn round, per-diagonal-block
// LU progress, the Schur complement) into a directory of checksummed,
// atomically written files, so `bepi_cli preprocess --checkpoint-dir=...`
// can be SIGKILLed at any point and resumed to the bit-identical model a
// from-scratch run would produce.
//
// Each checkpoint file is a section-framed stream (common/sections.hpp)
// with magic "BEPI-CKPT v1" whose first section binds it to a fingerprint
// of the (graph, options) pair; stale or corrupt checkpoints are ignored
// with a warning — resume never trades correctness for speed.
#ifndef BEPI_CORE_CHECKPOINT_HPP_
#define BEPI_CORE_CHECKPOINT_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace bepi {

class CheckpointManager {
 public:
  /// `dir` is created on the first Write if missing.
  explicit CheckpointManager(std::string dir);

  /// Binds subsequent reads/writes to a preprocessing identity. Reads of
  /// checkpoints written under a different fingerprint report NotFound
  /// (with a warning), so a changed graph or option set recomputes instead
  /// of resuming into a wrong model.
  void Bind(std::uint64_t fingerprint) { fingerprint_ = fingerprint; }
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Atomically replaces the checkpoint for `stage` with the given
  /// (name, payload) sections. After a successful commit the
  /// checkpoint.crash fault site, when armed, SIGKILLs the process — the
  /// hook the kill-and-resume smoke test is built on.
  Status Write(const std::string& stage,
               const std::vector<std::pair<std::string, std::string>>&
                   sections);

  /// The sections of `stage`'s checkpoint, keyed by name. NotFound when
  /// the checkpoint is absent, stale (fingerprint mismatch) or fails its
  /// integrity checks — callers recompute the stage in all three cases.
  Result<std::map<std::string, std::string>> Read(const std::string& stage);

  /// Removes `stage`'s checkpoint file if present (used when a stage's
  /// inputs were recomputed, invalidating downstream snapshots).
  void Invalidate(const std::string& stage);

  const std::string& dir() const { return dir_; }

  // Overhead accounting, surfaced through BepiPreprocessInfo so the
  // benchmarks can report checkpointing cost.
  double write_seconds() const { return write_seconds_; }
  index_t checkpoints_written() const { return written_; }
  index_t checkpoints_resumed() const { return resumed_; }

 private:
  std::string FilePath(const std::string& stage) const;

  std::string dir_;
  std::uint64_t fingerprint_ = 0;
  double write_seconds_ = 0.0;
  index_t written_ = 0;
  index_t resumed_ = 0;
};

/// Fingerprint of a preprocessing run: CRC32C over the adjacency structure
/// and weights combined with a caller-provided options tag. Two runs with
/// the same fingerprint produce bit-identical preprocessing artifacts.
std::uint64_t PreprocessFingerprint(const Graph& g,
                                    const std::string& options_tag);

}  // namespace bepi

#endif  // BEPI_CORE_CHECKPOINT_HPP_
