#include "core/decomposition.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "core/checkpoint.hpp"
#include "core/rwr.hpp"
#include "graph/deadend.hpp"
#include "graph/slashburn.hpp"
#include "sparse/coo.hpp"
#include "sparse/io.hpp"
#include "sparse/spgemm.hpp"
#include "solver/dense_lu.hpp"

namespace bepi {
namespace {

// Checkpoint stage names (file names under the checkpoint directory).
constexpr char kStageDeadend[] = "deadend";
constexpr char kStageSlashBurnRound[] = "slashburn.round";
constexpr char kStageReorder[] = "reorder";
constexpr char kStageFactor[] = "factor";
constexpr char kStageSchur[] = "schur";

using CheckpointSections = std::map<std::string, std::string>;

/// Dense LU without pivoting, valid for the strictly diagonally dominant
/// H11 blocks. Returns packed LU (L unit-lower below the diagonal, U on
/// and above).
Status FactorNoPivot(DenseMatrix* a) {
  const index_t n = a->rows();
  for (index_t k = 0; k < n; ++k) {
    const real_t pivot = a->At(k, k);
    if (pivot == 0.0) {
      return Status::FailedPrecondition("zero pivot in H11 block LU");
    }
    for (index_t i = k + 1; i < n; ++i) {
      const real_t factor = a->At(i, k) / pivot;
      a->At(i, k) = factor;
      if (factor == 0.0) continue;
      for (index_t j = k + 1; j < n; ++j) {
        a->At(i, j) -= factor * a->At(k, j);
      }
    }
  }
  return Status::Ok();
}

std::string EncodeIndexVector(const std::vector<index_t>& v) {
  std::ostringstream out;
  out << v.size() << "\n";
  for (index_t x : v) out << x << "\n";
  return out.str();
}

Status DecodeIndexVector(const std::string& payload,
                         std::vector<index_t>* out) {
  std::istringstream in(payload);
  std::uint64_t count = 0;
  if (!(in >> count)) {
    return Status::DataLoss("index vector payload has no size line");
  }
  // Each entry occupies at least two bytes ("0\n"); a count beyond the
  // payload size is a lie and must not drive a reserve().
  if (count > payload.size()) {
    return Status::DataLoss("index vector claims " + std::to_string(count) +
                            " entries in a " +
                            std::to_string(payload.size()) + "-byte payload");
  }
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    index_t x = 0;
    if (!(in >> x)) return Status::DataLoss("truncated index vector payload");
    out->push_back(x);
  }
  return Status::Ok();
}

Result<std::string> EncodeMatrix(const CsrMatrix& m) {
  std::ostringstream out;
  BEPI_RETURN_IF_ERROR(WriteMatrixMarket(m, out));
  return out.str();
}

Result<CsrMatrix> DecodeMatrix(const std::string& payload, index_t rows,
                               index_t cols) {
  std::istringstream in(payload);
  return ReadMatrixMarket(in, rows, cols);
}

Result<const std::string*> FindPayload(const CheckpointSections& sections,
                                       const std::string& name) {
  auto it = sections.find(name);
  if (it == sections.end()) {
    return Status::DataLoss("checkpoint lacks a '" + name + "' section");
  }
  return &it->second;
}

Status DecodeDeadend(const CheckpointSections& sections, index_t n,
                     DeadendPartition* out) {
  BEPI_ASSIGN_OR_RETURN(const std::string* counts,
                        FindPayload(sections, "counts"));
  std::istringstream in(*counts);
  if (!(in >> out->num_non_deadends >> out->num_deadends)) {
    return Status::DataLoss("malformed deadend counts");
  }
  BEPI_ASSIGN_OR_RETURN(const std::string* perm,
                        FindPayload(sections, "perm"));
  BEPI_RETURN_IF_ERROR(DecodeIndexVector(*perm, &out->perm));
  if (out->num_non_deadends < 0 || out->num_deadends < 0 ||
      out->num_non_deadends + out->num_deadends != n ||
      static_cast<index_t>(out->perm.size()) != n ||
      !IsPermutation(out->perm)) {
    return Status::DataLoss("deadend checkpoint is inconsistent");
  }
  return Status::Ok();
}

Status DecodeSlashBurnRound(const CheckpointSections& sections, index_t nn,
                            SlashBurnResult* out) {
  BEPI_ASSIGN_OR_RETURN(const std::string* counts,
                        FindPayload(sections, "counts"));
  std::istringstream in(*counts);
  if (!(in >> out->num_spokes >> out->num_hubs >> out->iterations)) {
    return Status::DataLoss("malformed SlashBurn round counts");
  }
  BEPI_ASSIGN_OR_RETURN(const std::string* perm,
                        FindPayload(sections, "perm"));
  BEPI_RETURN_IF_ERROR(DecodeIndexVector(*perm, &out->perm));
  BEPI_ASSIGN_OR_RETURN(const std::string* blocks,
                        FindPayload(sections, "blocks"));
  BEPI_RETURN_IF_ERROR(DecodeIndexVector(*blocks, &out->block_sizes));
  if (static_cast<index_t>(out->perm.size()) != nn) {
    return Status::DataLoss("SlashBurn round checkpoint is inconsistent");
  }
  // Deeper consistency (assigned-id accounting) is re-validated by
  // SlashBurn() itself before the state is trusted.
  return Status::Ok();
}

Status DecodeReorder(const CheckpointSections& sections,
                     HubSpokeDecomposition* dec) {
  BEPI_ASSIGN_OR_RETURN(const std::string* sizes,
                        FindPayload(sections, "sizes"));
  std::istringstream in(*sizes);
  index_t n = -1;
  if (!(in >> n >> dec->n1 >> dec->n2 >> dec->n3 >>
        dec->slashburn_iterations)) {
    return Status::DataLoss("malformed reorder sizes");
  }
  BEPI_ASSIGN_OR_RETURN(const std::string* perm,
                        FindPayload(sections, "perm"));
  BEPI_RETURN_IF_ERROR(DecodeIndexVector(*perm, &dec->perm));
  BEPI_ASSIGN_OR_RETURN(const std::string* blocks,
                        FindPayload(sections, "blocks"));
  BEPI_RETURN_IF_ERROR(DecodeIndexVector(*blocks, &dec->block_sizes));
  index_t block_sum = 0;
  for (index_t size : dec->block_sizes) {
    if (size <= 0) return Status::DataLoss("non-positive block size");
    block_sum += size;
  }
  if (n != dec->n || dec->n1 < 0 || dec->n2 < 0 || dec->n3 < 0 ||
      dec->n1 + dec->n2 + dec->n3 != dec->n || block_sum != dec->n1 ||
      static_cast<index_t>(dec->perm.size()) != dec->n ||
      !IsPermutation(dec->perm)) {
    return Status::DataLoss("reorder checkpoint is inconsistent");
  }
  return Status::Ok();
}

void AppendCsrToCoo(const CsrMatrix& m, CooMatrix* out) {
  for (index_t r = 0; r < m.rows(); ++r) {
    for (index_t p = m.row_ptr()[static_cast<std::size_t>(r)];
         p < m.row_ptr()[static_cast<std::size_t>(r) + 1]; ++p) {
      out->Add(r, m.col_idx()[static_cast<std::size_t>(p)],
               m.values()[static_cast<std::size_t>(p)]);
    }
  }
}

Status DecodeFactor(const CheckpointSections& sections, index_t n1,
                    std::size_t num_blocks, std::size_t* blocks_done,
                    CooMatrix* l1, CooMatrix* u1) {
  BEPI_ASSIGN_OR_RETURN(const std::string* progress,
                        FindPayload(sections, "progress"));
  std::istringstream in(*progress);
  std::uint64_t done = 0;
  if (!(in >> done) || done > num_blocks) {
    return Status::DataLoss("malformed factor progress");
  }
  BEPI_ASSIGN_OR_RETURN(const std::string* l1_text,
                        FindPayload(sections, "l1"));
  BEPI_ASSIGN_OR_RETURN(CsrMatrix l1_csr, DecodeMatrix(*l1_text, n1, n1));
  BEPI_ASSIGN_OR_RETURN(const std::string* u1_text,
                        FindPayload(sections, "u1"));
  BEPI_ASSIGN_OR_RETURN(CsrMatrix u1_csr, DecodeMatrix(*u1_text, n1, n1));
  AppendCsrToCoo(l1_csr, l1);
  AppendCsrToCoo(u1_csr, u1);
  *blocks_done = static_cast<std::size_t>(done);
  return Status::Ok();
}

Status WriteFactorCsrCheckpoint(CheckpointManager* checkpoints,
                                std::size_t blocks_done,
                                const CsrMatrix& l1_csr,
                                const CsrMatrix& u1_csr) {
  BEPI_ASSIGN_OR_RETURN(std::string l1_text, EncodeMatrix(l1_csr));
  BEPI_ASSIGN_OR_RETURN(std::string u1_text, EncodeMatrix(u1_csr));
  std::ostringstream progress;
  progress << blocks_done << "\n";
  return checkpoints->Write(kStageFactor, {{"progress", progress.str()},
                                           {"l1", std::move(l1_text)},
                                           {"u1", std::move(u1_text)}});
}

Status WriteFactorCheckpoint(CheckpointManager* checkpoints,
                             std::size_t blocks_done, const CooMatrix& l1,
                             const CooMatrix& u1) {
  // Partial COO state round-trips through sorted CSR; the final ToCsr()
  // sorts anyway, so the resumed run converges to the same matrices.
  BEPI_ASSIGN_OR_RETURN(CsrMatrix l1_csr, l1.ToCsr());
  BEPI_ASSIGN_OR_RETURN(CsrMatrix u1_csr, u1.ToCsr());
  return WriteFactorCsrCheckpoint(checkpoints, blocks_done, l1_csr, u1_csr);
}

/// Checkpoint writes are best-effort: a failure costs durability of this
/// resume point, never the run. (The checkpoint.crash SIGKILL site fires
/// inside Write itself, after a successful commit.)
void WarnOnCheckpointFailure(const Status& status, const char* stage) {
  if (!status.ok()) {
    BEPI_LOG(Warning) << "checkpoint write for stage '" << stage
                      << "' failed: " << status.ToString();
  }
}

void WarnOnResumeFailure(const Status& status, const char* stage) {
  BEPI_LOG(Warning) << "ignoring checkpoint for stage '" << stage
                    << "': " << status.ToString();
}

}  // namespace

Vector HubSpokeDecomposition::ApplyH11Inverse(const Vector& v) const {
  return u1_inv.Multiply(l1_inv.Multiply(v));
}

std::uint64_t HubSpokeDecomposition::CommonBytes() const {
  return l1_inv.ByteSize() + u1_inv.ByteSize() + h12.ByteSize() +
         h21.ByteSize() + h31.ByteSize() + h32.ByteSize();
}

Vector DecompositionKernels::ApplyH11Inverse(const Vector& v) const {
  return u1_inv.Multiply(l1_inv.Multiply(v));
}

void DecompositionKernels::ApplyH11InverseMulti(const real_t* v, index_t k,
                                                real_t* out,
                                                std::vector<real_t>* tmp) const {
  tmp->resize(static_cast<std::size_t>(l1_inv.rows()) *
              static_cast<std::size_t>(k));
  l1_inv.MultiplyMulti(v, k, tmp->data());
  u1_inv.MultiplyMulti(tmp->data(), k, out);
}

std::uint64_t DecompositionKernels::OwnedBytes() const {
  return l1_inv.ByteSize() + u1_inv.ByteSize() + h12.ByteSize() +
         h21.ByteSize() + h31.ByteSize() + h32.ByteSize() + schur.ByteSize();
}

DecompositionKernels BindDecompositionKernels(const HubSpokeDecomposition& dec,
                                              KernelPath requested) {
  DecompositionKernels k;
  const bool fits = FitsCompact(dec.l1_inv) && FitsCompact(dec.u1_inv) &&
                    FitsCompact(dec.h12) && FitsCompact(dec.h21) &&
                    FitsCompact(dec.h31) && FitsCompact(dec.h32) &&
                    FitsCompact(dec.schur);
  if (requested == KernelPath::kWide) {
    k.path = KernelPath::kWide;
    k.reason = "wide requested";
  } else if (fits) {
    k.path = KernelPath::kCompact;
    k.reason = requested == KernelPath::kCompact
                   ? "compact requested"
                   : "auto: all query matrices fit 32-bit indices";
  } else {
    k.path = KernelPath::kWide;
    k.reason = requested == KernelPath::kCompact
                   ? "compact requested but matrices exceed 32-bit limits"
                   : "auto: matrices exceed 32-bit limits";
  }
  k.l1_inv = KernelCsr::Bind(dec.l1_inv, k.path);
  k.u1_inv = KernelCsr::Bind(dec.u1_inv, k.path);
  k.h12 = KernelCsr::Bind(dec.h12, k.path);
  k.h21 = KernelCsr::Bind(dec.h21, k.path);
  k.h31 = KernelCsr::Bind(dec.h31, k.path);
  k.h32 = KernelCsr::Bind(dec.h32, k.path);
  k.schur = KernelCsr::Bind(dec.schur, k.path);
  return k;
}

Result<HubSpokeDecomposition> BuildDecomposition(
    const Graph& g, const DecompositionOptions& options, MemoryBudget* budget,
    CheckpointManager* checkpoints) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  if (!(options.restart_prob > 0.0) || !(options.restart_prob < 1.0)) {
    return Status::InvalidArgument("restart probability must be in (0, 1)");
  }
  HubSpokeDecomposition dec;
  dec.n = g.num_nodes();
  Timer timer;
  const auto cancelled = [&options] {
    return options.cancel != nullptr && options.cancel->Expired();
  };
  const auto cancel_status = [&options](const char* where) {
    return options.cancel->ToStatus(std::string("preprocess (") + where + ")");
  };

  // One span per pipeline stage, advanced at the same boundaries as the
  // stage timers so the exported trace mirrors the seconds breakdown.
  std::optional<TraceSpan> stage_span;
  stage_span.emplace("preprocess.reorder");

  // Steps 1+2: deadend reordering (Section 3.2.1) then hub-and-spoke
  // reordering of Ann via SlashBurn. A "reorder" checkpoint holds the
  // combined outcome and skips both.
  bool reorder_resumed = false;
  if (checkpoints != nullptr) {
    Result<CheckpointSections> ckpt = checkpoints->Read(kStageReorder);
    if (ckpt.ok()) {
      const Status decoded = DecodeReorder(*ckpt, &dec);
      if (decoded.ok()) {
        reorder_resumed = true;
      } else {
        WarnOnResumeFailure(decoded, kStageReorder);
      }
    }
  }
  if (!reorder_resumed) {
    DeadendPartition deadends;
    bool deadend_resumed = false;
    if (checkpoints != nullptr) {
      Result<CheckpointSections> ckpt = checkpoints->Read(kStageDeadend);
      if (ckpt.ok()) {
        const Status decoded = DecodeDeadend(*ckpt, dec.n, &deadends);
        if (decoded.ok()) {
          deadend_resumed = true;
        } else {
          WarnOnResumeFailure(decoded, kStageDeadend);
        }
      }
    }
    if (!deadend_resumed) {
      TraceSpan deadend_span("preprocess.deadend_reorder");
      deadends = ReorderDeadends(g);
      deadend_span.Arg("deadends", deadends.num_deadends);
      if (checkpoints != nullptr) {
        std::ostringstream counts;
        counts << deadends.num_non_deadends << " " << deadends.num_deadends
               << "\n";
        WarnOnCheckpointFailure(
            checkpoints->Write(kStageDeadend,
                               {{"counts", counts.str()},
                                {"perm", EncodeIndexVector(deadends.perm)}}),
            kStageDeadend);
      }
    }
    dec.n3 = deadends.num_deadends;
    const index_t nn = deadends.num_non_deadends;

    BEPI_ASSIGN_OR_RETURN(
        CsrMatrix a_deadend_ordered,
        PermuteSymmetric(g.adjacency(), deadends.perm));
    BEPI_ASSIGN_OR_RETURN(CsrMatrix ann,
                          ExtractBlock(a_deadend_ordered, 0, nn, 0, nn));
    SlashBurnOptions sb_options;
    sb_options.k_ratio = options.hub_ratio;
    sb_options.hub_selection = options.hub_selection;
    sb_options.max_iterations = options.slashburn_max_iterations;
    // Round-level resume only makes sense for deterministic hub selection;
    // kRandom would diverge from the uninterrupted run (slashburn.hpp).
    SlashBurnResult round_state;
    const bool resumable =
        checkpoints != nullptr &&
        options.hub_selection == SlashBurnOptions::HubSelection::kDegree;
    Timer since_round_ckpt;
    if (resumable) {
      Result<CheckpointSections> ckpt =
          checkpoints->Read(kStageSlashBurnRound);
      if (ckpt.ok()) {
        const Status decoded = DecodeSlashBurnRound(*ckpt, nn, &round_state);
        if (decoded.ok()) {
          sb_options.resume_from = &round_state;
        } else {
          WarnOnResumeFailure(decoded, kStageSlashBurnRound);
        }
      }
      sb_options.round_hook = [&](const SlashBurnResult& partial) -> Status {
        // A cancellation (SIGINT) commits the round immediately — the
        // interval only throttles steady-state snapshots — so the resumed
        // run restarts from this exact round.
        const bool cancel_now = cancelled();
        if (!cancel_now &&
            since_round_ckpt.Seconds() < options.checkpoint_interval_seconds) {
          return Status::Ok();
        }
        std::ostringstream counts;
        counts << partial.num_spokes << " " << partial.num_hubs << " "
               << partial.iterations << "\n";
        WarnOnCheckpointFailure(
            checkpoints->Write(
                kStageSlashBurnRound,
                {{"counts", counts.str()},
                 {"perm", EncodeIndexVector(partial.perm)},
                 {"blocks", EncodeIndexVector(partial.block_sizes)}}),
            kStageSlashBurnRound);
        since_round_ckpt.Restart();
        if (cancel_now) return cancel_status("slashburn");
        return Status::Ok();
      };
    } else if (options.cancel != nullptr) {
      // No checkpointing (or non-resumable hub selection): still honour
      // the token at round boundaries, just without a snapshot to commit.
      sb_options.round_hook = [&](const SlashBurnResult&) -> Status {
        if (cancelled()) return cancel_status("slashburn");
        return Status::Ok();
      };
    }
    std::optional<TraceSpan> slashburn_span;
    slashburn_span.emplace("preprocess.slashburn");
    Result<SlashBurnResult> sb_result = SlashBurn(ann, sb_options);
    if (!sb_result.ok() && sb_options.resume_from != nullptr) {
      // A checkpoint that passed its checksum but fails SlashBurn's own
      // consistency validation is recomputed, not fatal.
      WarnOnResumeFailure(sb_result.status(), kStageSlashBurnRound);
      sb_options.resume_from = nullptr;
      sb_result = SlashBurn(ann, sb_options);
    }
    BEPI_ASSIGN_OR_RETURN(SlashBurnResult sb, std::move(sb_result));
    slashburn_span->Arg("rounds", sb.iterations);
    slashburn_span->Arg("hubs", sb.num_hubs);
    slashburn_span->Arg("spokes", sb.num_spokes);
    slashburn_span.reset();
    dec.n1 = sb.num_spokes;
    dec.n2 = sb.num_hubs;
    dec.block_sizes = std::move(sb.block_sizes);
    dec.slashburn_iterations = sb.iterations;

    // Full permutation: SlashBurn order on non-deadends, deadends
    // unchanged.
    Permutation hub_spoke_perm = IdentityPermutation(dec.n);
    for (index_t i = 0; i < nn; ++i) {
      hub_spoke_perm[static_cast<std::size_t>(i)] =
          sb.perm[static_cast<std::size_t>(i)];
    }
    dec.perm = ComposePermutations(hub_spoke_perm, deadends.perm);

    if (checkpoints != nullptr) {
      std::ostringstream sizes;
      sizes << dec.n << " " << dec.n1 << " " << dec.n2 << " " << dec.n3
            << " " << dec.slashburn_iterations << "\n";
      WarnOnCheckpointFailure(
          checkpoints->Write(kStageReorder,
                             {{"sizes", sizes.str()},
                              {"perm", EncodeIndexVector(dec.perm)},
                              {"blocks", EncodeIndexVector(dec.block_sizes)}}),
          kStageReorder);
      // The reorder snapshot supersedes its inputs; drop them so the
      // directory only holds live resume points.
      checkpoints->Invalidate(kStageSlashBurnRound);
      checkpoints->Invalidate(kStageDeadend);
    }
  }
  dec.reorder_seconds = timer.Seconds();
  // Stage boundary: the reorder checkpoint (if any) is durable, so an
  // interrupted run resumes directly into the factor stage.
  if (cancelled()) return cancel_status("reorder");
  stage_span->Arg("n1", dec.n1);
  stage_span->Arg("n2", dec.n2);
  stage_span->Arg("n3", dec.n3);
  stage_span.emplace("preprocess.build_h");

  // Step 3: H = I - (1-c) Ã^T in the new ordering (the normalization uses
  // the original out-degrees; edges to deadends count). Cheap relative to
  // factoring, so it is recomputed rather than checkpointed.
  timer.Restart();
  BEPI_ASSIGN_OR_RETURN(
      CsrMatrix normalized_perm,
      PermuteSymmetric(g.RowNormalizedAdjacency(), dec.perm));
  CsrMatrix h = BuildHFromNormalized(normalized_perm, options.restart_prob);

  // Step 4: partition H per Equation (5).
  const index_t b1 = dec.n1;
  const index_t b2 = dec.n1 + dec.n2;
  const index_t b3 = dec.n;
  BEPI_ASSIGN_OR_RETURN(dec.h11, ExtractBlock(h, 0, b1, 0, b1));
  BEPI_ASSIGN_OR_RETURN(dec.h12, ExtractBlock(h, 0, b1, b1, b2));
  BEPI_ASSIGN_OR_RETURN(dec.h21, ExtractBlock(h, b1, b2, 0, b1));
  BEPI_ASSIGN_OR_RETURN(dec.h22, ExtractBlock(h, b1, b2, b1, b2));
  BEPI_ASSIGN_OR_RETURN(dec.h31, ExtractBlock(h, b2, b3, 0, b1));
  BEPI_ASSIGN_OR_RETURN(dec.h32, ExtractBlock(h, b2, b3, b1, b2));
  if (budget != nullptr) {
    BEPI_RETURN_IF_ERROR(
        budget->Charge(dec.h12.ByteSize() + dec.h21.ByteSize() +
                           dec.h31.ByteSize() + dec.h32.ByteSize(),
                       "partition blocks of H"));
  }
  dec.build_seconds = timer.Seconds();
  stage_span.emplace("preprocess.block_lu");
  stage_span->Arg("blocks",
                  static_cast<std::int64_t>(dec.block_sizes.size()));

  // Step 5: per-block LU of H11 with explicitly inverted factors
  // (r1 = U1^{-1} (L1^{-1} ...) in the query phase). The "factor"
  // checkpoint records how many whole blocks are already inverted.
  timer.Restart();
  if (budget != nullptr) {
    std::uint64_t projected = 0;
    for (index_t size : dec.block_sizes) {
      const std::uint64_t s = static_cast<std::uint64_t>(size);
      // L^{-1} and U^{-1} of a block are triangular: ~s^2 values + indices.
      projected += s * s * (sizeof(real_t) + sizeof(index_t)) + 2 * s * 8;
    }
    BEPI_RETURN_IF_ERROR(budget->Charge(projected, "inverted LU factors of H11"));
  }
  const std::size_t num_blocks = dec.block_sizes.size();
  CooMatrix l1_coo(dec.n1, dec.n1), u1_coo(dec.n1, dec.n1);
  std::size_t blocks_done = 0;
  if (checkpoints != nullptr) {
    Result<CheckpointSections> ckpt = checkpoints->Read(kStageFactor);
    if (ckpt.ok()) {
      const Status decoded = DecodeFactor(*ckpt, dec.n1, num_blocks,
                                          &blocks_done, &l1_coo, &u1_coo);
      if (!decoded.ok()) {
        WarnOnResumeFailure(decoded, kStageFactor);
        blocks_done = 0;
        l1_coo = CooMatrix(dec.n1, dec.n1);
        u1_coo = CooMatrix(dec.n1, dec.n1);
      }
    }
  }
  const std::size_t blocks_resumed = blocks_done;
  index_t block_start = 0;
  for (std::size_t b = 0; b < blocks_resumed; ++b) {
    block_start += dec.block_sizes[b];
  }
  Timer since_factor_ckpt;
  // Each diagonal block factors independently, so blocks are farmed to the
  // thread pool in bounded batches; the COO staging buffers are then
  // appended serially in block order between batches. That keeps the
  // factor checkpoint's prefix-count semantics (blocks_done whole blocks,
  // in order) and the checkpoint bytes identical to a serial run, while
  // bounding the extra memory to one batch of dense inverses. Without a
  // pool the batch size is 1 — exactly the old one-block-at-a-time loop.
  struct BlockFactors {
    DenseMatrix l_inv{0, 0};
    DenseMatrix u_inv{0, 0};
    Status status = Status::Ok();
  };
  ThreadPool* pool = ParallelContext::Global().pool();
  const std::size_t max_batch_blocks =
      pool == nullptr ? 1 : 4 * static_cast<std::size_t>(pool->size());
  // A whole batch of dense factors is alive at once (working copy plus
  // L^{-1}/U^{-1}, each size^2 doubles per block), so batches are also
  // capped by bytes: the memory budget's remaining headroom when one is
  // set, a fixed default otherwise. A single block always proceeds — that
  // matches the serial baseline's peak.
  constexpr std::uint64_t kDefaultBatchBytes = 256ull << 20;
  std::uint64_t batch_byte_cap = kDefaultBatchBytes;
  if (budget != nullptr && !budget->unlimited()) {
    const std::uint64_t headroom =
        budget->budget_bytes() > budget->used_bytes()
            ? budget->budget_bytes() - budget->used_bytes()
            : 0;
    batch_byte_cap = std::min(kDefaultBatchBytes, headroom);
  }
  const auto block_transient_bytes = [&dec](std::size_t b) {
    const std::uint64_t s = static_cast<std::uint64_t>(dec.block_sizes[b]);
    return 3 * s * s * static_cast<std::uint64_t>(sizeof(real_t));
  };
  std::vector<index_t> block_starts(num_blocks, 0);
  {
    index_t start = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      block_starts[b] = start;
      start += dec.block_sizes[b];
    }
  }
  for (std::size_t batch_begin = blocks_resumed; batch_begin < num_blocks;) {
    std::size_t batch_end = batch_begin + 1;
    std::uint64_t batch_bytes = block_transient_bytes(batch_begin);
    while (batch_end < num_blocks &&
           batch_end - batch_begin < max_batch_blocks &&
           batch_bytes + block_transient_bytes(batch_end) <= batch_byte_cap) {
      batch_bytes += block_transient_bytes(batch_end);
      ++batch_end;
    }
    std::vector<BlockFactors> factors(batch_end - batch_begin);
    ParallelFor(
        static_cast<index_t>(batch_begin), static_cast<index_t>(batch_end), 1,
        [&](index_t bb, index_t be) {
          for (index_t b = bb; b < be; ++b) {
            BlockFactors& out =
                factors[static_cast<std::size_t>(b) - batch_begin];
            out.status = [&]() -> Status {
              const index_t start =
                  block_starts[static_cast<std::size_t>(b)];
              const index_t size = dec.block_sizes[static_cast<std::size_t>(b)];
              BEPI_ASSIGN_OR_RETURN(
                  CsrMatrix block_csr,
                  ExtractBlock(dec.h11, start, start + size, start,
                               start + size));
              DenseMatrix block = block_csr.ToDense();
              BEPI_RETURN_IF_ERROR(FactorNoPivot(&block));
              BEPI_ASSIGN_OR_RETURN(
                  out.l_inv,
                  InvertLowerTriangular(block, /*unit_diagonal=*/true));
              BEPI_ASSIGN_OR_RETURN(out.u_inv, InvertUpperTriangular(block));
              return Status::Ok();
            }();
          }
        });
    for (std::size_t b = batch_begin; b < batch_end; ++b) {
      const BlockFactors& f = factors[b - batch_begin];
      BEPI_RETURN_IF_ERROR(f.status);
      const index_t size = dec.block_sizes[b];
      BEPI_CHECK(block_start == block_starts[b]);
      for (index_t i = 0; i < size; ++i) {
        for (index_t j = 0; j <= i; ++j) {
          const real_t lv = i == j ? 1.0 : f.l_inv.At(i, j);
          if (lv != 0.0) l1_coo.Add(block_start + i, block_start + j, lv);
          const real_t uv = f.u_inv.At(j, i);
          if (uv != 0.0) u1_coo.Add(block_start + j, block_start + i, uv);
        }
      }
      block_start += size;
      ++blocks_done;
      // Cancellation commits the factor progress made so far (interval
      // ignored) before aborting, so the resumed run continues from block
      // blocks_done instead of the last interval snapshot.
      const bool cancel_now = cancelled();
      if (checkpoints != nullptr && blocks_done < num_blocks &&
          (cancel_now || since_factor_ckpt.Seconds() >=
                             options.checkpoint_interval_seconds)) {
        WarnOnCheckpointFailure(
            WriteFactorCheckpoint(checkpoints, blocks_done, l1_coo, u1_coo),
            kStageFactor);
        since_factor_ckpt.Restart();
      }
      if (cancel_now) return cancel_status("factor");
    }
    batch_begin = batch_end;
  }
  BEPI_CHECK(block_start == dec.n1);
  BEPI_ASSIGN_OR_RETURN(dec.l1_inv, l1_coo.ToCsr());
  BEPI_ASSIGN_OR_RETURN(dec.u1_inv, u1_coo.ToCsr());
  if (checkpoints != nullptr && blocks_resumed < num_blocks) {
    // The stage-boundary snapshot reuses the assembled CSR factors rather
    // than re-sorting the COO staging buffers a second time.
    WarnOnCheckpointFailure(
        WriteFactorCsrCheckpoint(checkpoints, num_blocks, dec.l1_inv,
                                 dec.u1_inv),
        kStageFactor);
  }
  dec.factor_seconds = timer.Seconds();
  // Stage boundary: the assembled factor checkpoint is durable.
  if (cancelled()) return cancel_status("factor");
  stage_span.emplace("preprocess.schur");

  // Step 6: Schur complement S = H22 - H21 (U1^{-1} (L1^{-1} H12)).
  timer.Restart();
  bool schur_resumed = false;
  if (checkpoints != nullptr) {
    Result<CheckpointSections> ckpt = checkpoints->Read(kStageSchur);
    if (ckpt.ok()) {
      const Status decoded = [&]() -> Status {
        BEPI_ASSIGN_OR_RETURN(const std::string* meta,
                              FindPayload(*ckpt, "meta"));
        std::istringstream in(*meta);
        if (!(in >> dec.product_nnz) || dec.product_nnz < 0) {
          return Status::DataLoss("malformed Schur metadata");
        }
        BEPI_ASSIGN_OR_RETURN(const std::string* schur,
                              FindPayload(*ckpt, "schur"));
        BEPI_ASSIGN_OR_RETURN(dec.schur,
                              DecodeMatrix(*schur, dec.n2, dec.n2));
        return Status::Ok();
      }();
      if (decoded.ok()) {
        schur_resumed = true;
      } else {
        WarnOnResumeFailure(decoded, kStageSchur);
      }
    }
  }
  if (!schur_resumed) {
    BEPI_ASSIGN_OR_RETURN(CsrMatrix t1, Multiply(dec.l1_inv, dec.h12));
    BEPI_ASSIGN_OR_RETURN(CsrMatrix t2, Multiply(dec.u1_inv, t1));
    BEPI_ASSIGN_OR_RETURN(CsrMatrix t3, Multiply(dec.h21, t2));
    dec.product_nnz = t3.nnz();
    BEPI_ASSIGN_OR_RETURN(dec.schur, Subtract(dec.h22, t3));
    if (checkpoints != nullptr) {
      const Status written = [&]() -> Status {
        BEPI_ASSIGN_OR_RETURN(std::string schur_text,
                              EncodeMatrix(dec.schur));
        std::ostringstream meta;
        meta << dec.product_nnz << "\n";
        return checkpoints->Write(kStageSchur,
                                  {{"meta", meta.str()},
                                   {"schur", std::move(schur_text)}});
      }();
      WarnOnCheckpointFailure(written, kStageSchur);
    }
  }
  if (budget != nullptr) {
    BEPI_RETURN_IF_ERROR(budget->Charge(dec.schur.ByteSize(),
                                        "Schur complement S"));
  }
  dec.schur_seconds = timer.Seconds();
  stage_span->Arg("schur_nnz", dec.schur.nnz());
  stage_span->Arg("resumed", static_cast<std::int64_t>(schur_resumed));
  return dec;
}

}  // namespace bepi
