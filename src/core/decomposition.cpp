#include "core/decomposition.hpp"

#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/rwr.hpp"
#include "graph/deadend.hpp"
#include "graph/slashburn.hpp"
#include "sparse/coo.hpp"
#include "sparse/spgemm.hpp"
#include "solver/dense_lu.hpp"

namespace bepi {
namespace {

/// Dense LU without pivoting, valid for the strictly diagonally dominant
/// H11 blocks. Returns packed LU (L unit-lower below the diagonal, U on
/// and above).
Status FactorNoPivot(DenseMatrix* a) {
  const index_t n = a->rows();
  for (index_t k = 0; k < n; ++k) {
    const real_t pivot = a->At(k, k);
    if (pivot == 0.0) {
      return Status::FailedPrecondition("zero pivot in H11 block LU");
    }
    for (index_t i = k + 1; i < n; ++i) {
      const real_t factor = a->At(i, k) / pivot;
      a->At(i, k) = factor;
      if (factor == 0.0) continue;
      for (index_t j = k + 1; j < n; ++j) {
        a->At(i, j) -= factor * a->At(k, j);
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Vector HubSpokeDecomposition::ApplyH11Inverse(const Vector& v) const {
  return u1_inv.Multiply(l1_inv.Multiply(v));
}

std::uint64_t HubSpokeDecomposition::CommonBytes() const {
  return l1_inv.ByteSize() + u1_inv.ByteSize() + h12.ByteSize() +
         h21.ByteSize() + h31.ByteSize() + h32.ByteSize();
}

Result<HubSpokeDecomposition> BuildDecomposition(
    const Graph& g, const DecompositionOptions& options,
    MemoryBudget* budget) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  if (!(options.restart_prob > 0.0) || !(options.restart_prob < 1.0)) {
    return Status::InvalidArgument("restart probability must be in (0, 1)");
  }
  HubSpokeDecomposition dec;
  dec.n = g.num_nodes();
  Timer timer;

  // Step 1: deadend reordering (Section 3.2.1).
  const DeadendPartition deadends = ReorderDeadends(g);
  dec.n3 = deadends.num_deadends;
  const index_t nn = deadends.num_non_deadends;

  // Step 2: hub-and-spoke reordering of Ann via SlashBurn.
  BEPI_ASSIGN_OR_RETURN(
      CsrMatrix a_deadend_ordered,
      PermuteSymmetric(g.adjacency(), deadends.perm));
  BEPI_ASSIGN_OR_RETURN(CsrMatrix ann,
                        ExtractBlock(a_deadend_ordered, 0, nn, 0, nn));
  SlashBurnOptions sb_options;
  sb_options.k_ratio = options.hub_ratio;
  sb_options.hub_selection = options.hub_selection;
  sb_options.max_iterations = options.slashburn_max_iterations;
  BEPI_ASSIGN_OR_RETURN(SlashBurnResult sb, SlashBurn(ann, sb_options));
  dec.n1 = sb.num_spokes;
  dec.n2 = sb.num_hubs;
  dec.block_sizes = std::move(sb.block_sizes);
  dec.slashburn_iterations = sb.iterations;

  // Full permutation: SlashBurn order on non-deadends, deadends unchanged.
  Permutation hub_spoke_perm = IdentityPermutation(dec.n);
  for (index_t i = 0; i < nn; ++i) {
    hub_spoke_perm[static_cast<std::size_t>(i)] =
        sb.perm[static_cast<std::size_t>(i)];
  }
  dec.perm = ComposePermutations(hub_spoke_perm, deadends.perm);
  dec.reorder_seconds = timer.Seconds();

  // Step 3: H = I - (1-c) Ã^T in the new ordering (the normalization uses
  // the original out-degrees; edges to deadends count).
  timer.Restart();
  BEPI_ASSIGN_OR_RETURN(
      CsrMatrix normalized_perm,
      PermuteSymmetric(g.RowNormalizedAdjacency(), dec.perm));
  CsrMatrix h = BuildHFromNormalized(normalized_perm, options.restart_prob);

  // Step 4: partition H per Equation (5).
  const index_t b1 = dec.n1;
  const index_t b2 = dec.n1 + dec.n2;
  const index_t b3 = dec.n;
  BEPI_ASSIGN_OR_RETURN(dec.h11, ExtractBlock(h, 0, b1, 0, b1));
  BEPI_ASSIGN_OR_RETURN(dec.h12, ExtractBlock(h, 0, b1, b1, b2));
  BEPI_ASSIGN_OR_RETURN(dec.h21, ExtractBlock(h, b1, b2, 0, b1));
  BEPI_ASSIGN_OR_RETURN(dec.h22, ExtractBlock(h, b1, b2, b1, b2));
  BEPI_ASSIGN_OR_RETURN(dec.h31, ExtractBlock(h, b2, b3, 0, b1));
  BEPI_ASSIGN_OR_RETURN(dec.h32, ExtractBlock(h, b2, b3, b1, b2));
  if (budget != nullptr) {
    BEPI_RETURN_IF_ERROR(
        budget->Charge(dec.h12.ByteSize() + dec.h21.ByteSize() +
                           dec.h31.ByteSize() + dec.h32.ByteSize(),
                       "partition blocks of H"));
  }
  dec.build_seconds = timer.Seconds();

  // Step 5: per-block LU of H11 with explicitly inverted factors
  // (r1 = U1^{-1} (L1^{-1} ...) in the query phase).
  timer.Restart();
  if (budget != nullptr) {
    std::uint64_t projected = 0;
    for (index_t size : dec.block_sizes) {
      const std::uint64_t s = static_cast<std::uint64_t>(size);
      // L^{-1} and U^{-1} of a block are triangular: ~s^2 values + indices.
      projected += s * s * (sizeof(real_t) + sizeof(index_t)) + 2 * s * 8;
    }
    BEPI_RETURN_IF_ERROR(budget->Charge(projected, "inverted LU factors of H11"));
  }
  CooMatrix l1_coo(dec.n1, dec.n1), u1_coo(dec.n1, dec.n1);
  index_t block_start = 0;
  for (index_t size : dec.block_sizes) {
    BEPI_ASSIGN_OR_RETURN(
        CsrMatrix block_csr,
        ExtractBlock(dec.h11, block_start, block_start + size, block_start,
                     block_start + size));
    DenseMatrix block = block_csr.ToDense();
    BEPI_RETURN_IF_ERROR(FactorNoPivot(&block));
    BEPI_ASSIGN_OR_RETURN(DenseMatrix l_inv,
                          InvertLowerTriangular(block, /*unit_diagonal=*/true));
    BEPI_ASSIGN_OR_RETURN(DenseMatrix u_inv, InvertUpperTriangular(block));
    for (index_t i = 0; i < size; ++i) {
      for (index_t j = 0; j <= i; ++j) {
        const real_t lv = i == j ? 1.0 : l_inv.At(i, j);
        if (lv != 0.0) l1_coo.Add(block_start + i, block_start + j, lv);
        const real_t uv = u_inv.At(j, i);
        if (uv != 0.0) u1_coo.Add(block_start + j, block_start + i, uv);
      }
    }
    block_start += size;
  }
  BEPI_CHECK(block_start == dec.n1);
  BEPI_ASSIGN_OR_RETURN(dec.l1_inv, l1_coo.ToCsr());
  BEPI_ASSIGN_OR_RETURN(dec.u1_inv, u1_coo.ToCsr());
  dec.factor_seconds = timer.Seconds();

  // Step 6: Schur complement S = H22 - H21 (U1^{-1} (L1^{-1} H12)).
  timer.Restart();
  BEPI_ASSIGN_OR_RETURN(CsrMatrix t1, Multiply(dec.l1_inv, dec.h12));
  BEPI_ASSIGN_OR_RETURN(CsrMatrix t2, Multiply(dec.u1_inv, t1));
  BEPI_ASSIGN_OR_RETURN(CsrMatrix t3, Multiply(dec.h21, t2));
  dec.product_nnz = t3.nnz();
  BEPI_ASSIGN_OR_RETURN(dec.schur, Subtract(dec.h22, t3));
  if (budget != nullptr) {
    BEPI_RETURN_IF_ERROR(budget->Charge(dec.schur.ByteSize(),
                                        "Schur complement S"));
  }
  dec.schur_seconds = timer.Seconds();
  return dec;
}

}  // namespace bepi
