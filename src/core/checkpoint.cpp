#include "core/checkpoint.hpp"

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/faultinject.hpp"
#include "common/fileio.hpp"
#include "common/log.hpp"
#include "common/sections.hpp"
#include "common/timer.hpp"

namespace bepi {
namespace {

constexpr char kCheckpointMagic[] = "BEPI-CKPT v1";

/// Stage names become file names; anything outside [A-Za-z0-9_.-] is
/// mapped to '_' (stages like "factor" and "slashburn.round" pass through).
std::string SanitizeStage(const std::string& stage) {
  std::string out = stage;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                      c == '-';
    if (!keep) c = '_';
  }
  return out;
}

std::string FingerprintHex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir) : dir_(std::move(dir)) {}

std::string CheckpointManager::FilePath(const std::string& stage) const {
  return dir_ + "/" + SanitizeStage(stage) + ".ckpt";
}

Status CheckpointManager::Write(
    const std::string& stage,
    const std::vector<std::pair<std::string, std::string>>& sections) {
  Timer timer;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + dir_ + ": " +
                           ec.message());
  }
  AtomicFileWriter writer(FilePath(stage));
  BEPI_RETURN_IF_ERROR(writer.status());
  SectionWriter framer(writer.stream(), kCheckpointMagic);
  std::ostringstream meta;
  meta << "fingerprint " << FingerprintHex(fingerprint_) << "\n"
       << "stage " << stage << "\n";
  BEPI_RETURN_IF_ERROR(framer.Add("meta", meta.str()));
  for (const auto& [name, payload] : sections) {
    BEPI_RETURN_IF_ERROR(framer.Add(name, payload));
  }
  BEPI_RETURN_IF_ERROR(framer.Finish());
  BEPI_RETURN_IF_ERROR(writer.Commit());
  ++written_;
  write_seconds_ += timer.Seconds();
  if (BEPI_FAULT_INJECTED(fault_sites::kCheckpointCrash)) {
    // The kill-and-resume harness arms this site to die *after* a durable
    // commit — the hardest crash point a resume must survive.
    std::raise(SIGKILL);
  }
  return Status::Ok();
}

Result<std::map<std::string, std::string>> CheckpointManager::Read(
    const std::string& stage) {
  const std::string path = FilePath(stage);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no checkpoint for stage '" + stage + "'");
  }
  auto invalid = [&](const Status& why) {
    BEPI_LOG(Warning) << "ignoring checkpoint " << path << ": "
                      << why.ToString();
    return Status::NotFound("checkpoint for stage '" + stage +
                            "' is unusable: " + why.ToString());
  };
  Result<SectionReader> reader = SectionReader::Open(in, kCheckpointMagic);
  if (!reader.ok()) return invalid(reader.status());
  Result<Section> meta = reader->Expect("meta");
  if (!meta.ok()) return invalid(meta.status());
  std::istringstream meta_stream(meta->payload);
  std::string key, fingerprint_hex, stage_key, stored_stage;
  meta_stream >> key >> fingerprint_hex >> stage_key >> stored_stage;
  if (key != "fingerprint" ||
      fingerprint_hex != FingerprintHex(fingerprint_) ||
      stage_key != "stage" || stored_stage != stage) {
    return invalid(Status::FailedPrecondition(
        "stale checkpoint (graph or options changed)"));
  }
  std::map<std::string, std::string> result;
  for (;;) {
    Result<std::optional<Section>> next = reader->Next();
    if (!next.ok()) return invalid(next.status());
    if (!next->has_value()) break;
    result[(*next)->name] = std::move((*next)->payload);
  }
  ++resumed_;
  return result;
}

void CheckpointManager::Invalidate(const std::string& stage) {
  std::remove(FilePath(stage).c_str());
}

std::uint64_t PreprocessFingerprint(const Graph& g,
                                    const std::string& options_tag) {
  const CsrMatrix& a = g.adjacency();
  Crc32c structure;
  const index_t shape[2] = {a.rows(), a.cols()};
  structure.Update(shape, sizeof(shape));
  structure.Update(a.row_ptr().data(),
                   a.row_ptr().size() * sizeof(index_t));
  structure.Update(a.col_idx().data(),
                   a.col_idx().size() * sizeof(index_t));
  structure.Update(a.values().data(), a.values().size() * sizeof(real_t));
  Crc32c tagged;
  const std::uint32_t structure_crc = structure.Value();
  tagged.Update(&structure_crc, sizeof(structure_crc));
  tagged.Update(options_tag);
  return static_cast<std::uint64_t>(structure.Value()) << 32 |
         tagged.Value();
}

}  // namespace bepi
