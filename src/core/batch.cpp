#include "core/batch.hpp"

#include <algorithm>
#include <exception>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "solver/gmres.hpp"

namespace bepi {

BatchQueryEngine::BatchQueryEngine(const BepiSolver& solver,
                                   BatchQueryOptions options)
    : solver_(solver), options_(options) {}

Result<BatchQueryResult> BatchQueryEngine::Run(
    const std::vector<index_t>& seeds) const {
  Timer timer;
  TraceSpan batch_span("query.batch");

  const bool topk_mode = options_.topk.k > 0;
  BatchQueryResult result;
  if (topk_mode) {
    result.topk.resize(seeds.size());
  } else {
    result.vectors.resize(seeds.size());
  }
  if (options_.collect_stats) result.stats.resize(seeds.size());

  // Duplicate seeds solve once: an RWR query is a pure function of
  // (model, seed), so later occurrences reuse the first occurrence's
  // result instead of re-streaming the matrices — the same key identity
  // the serve-path score cache (server/cache.hpp) is built on. Solving
  // runs over the deduplicated list; the fan-out below copies each unique
  // result into every requesting position.
  std::vector<index_t> unique_seeds;
  std::vector<std::size_t> unique_of(seeds.size());
  std::vector<index_t> first_occurrence;
  {
    std::unordered_map<index_t, std::size_t> seen;
    seen.reserve(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const auto [it, inserted] = seen.emplace(seeds[i], unique_seeds.size());
      if (inserted) {
        unique_seeds.push_back(seeds[i]);
        first_occurrence.push_back(static_cast<index_t>(i));
      }
      unique_of[i] = it->second;
    }
  }
  const index_t n = static_cast<index_t>(unique_seeds.size());
  std::vector<Vector> unique_vectors(topk_mode ? 0 : unique_seeds.size());
  std::vector<TopKResult> unique_topk(topk_mode ? unique_seeds.size() : 0);
  std::vector<QueryStats> unique_stats(
      options_.collect_stats ? unique_seeds.size() : 0);

  ThreadPool* pool = ParallelContext::Global().pool();
  index_t slots = options_.max_concurrency > 0
                      ? static_cast<index_t>(options_.max_concurrency)
                      : static_cast<index_t>(
                            ParallelContext::Global().num_threads());
  slots = std::clamp<index_t>(slots, 1, std::max<index_t>(n, 1));
  if (pool == nullptr) slots = 1;

  // One workspace per concurrency slot: slot s answers the contiguous
  // seed range [s*n/slots, (s+1)*n/slots) reusing its own scratch, so the
  // steady state allocates nothing per query.
  std::vector<GmresWorkspace> workspaces(static_cast<std::size_t>(slots));

  // First failure in *seed order* wins, independent of completion order,
  // so a batch fails deterministically.
  std::mutex error_mutex;
  index_t error_index = std::numeric_limits<index_t>::max();
  Status error = Status::Ok();

  auto run_slot = [&](index_t slot) {
    const index_t begin = slot * n / slots;
    const index_t end = (slot + 1) * n / slots;
    GmresWorkspace& ws = workspaces[static_cast<std::size_t>(slot)];
    QueryControl control;
    control.cancel = options_.cancel;
    control.warm_start_mc = options_.warm_start_mc;
    for (index_t u = begin; u < end; ++u) {
      const std::size_t idx = static_cast<std::size_t>(u);
      // Failures report the unique seed's first occurrence so the
      // "first failure in seed order" contract survives deduplication
      // (every occurrence of a failing seed would fail identically).
      const index_t orig = first_occurrence[idx];
      if (options_.cancel != nullptr && options_.cancel->Expired()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (orig < error_index) {
          error_index = orig;
          error = options_.cancel->ToStatus("batch query");
        }
        return;
      }
      QueryStats* stats =
          options_.collect_stats ? &unique_stats[idx] : nullptr;
      if (topk_mode) {
        Result<TopKResult> r =
            solver_.QueryTopK(unique_seeds[idx], options_.topk, stats, &ws,
                              control);
        if (!r.ok()) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (orig < error_index) {
            error_index = orig;
            error = r.status();
          }
          return;  // abandon this slot's remaining seeds
        }
        unique_topk[idx] = std::move(r).value();
        continue;
      }
      Result<Vector> r = solver_.Query(unique_seeds[idx], stats, &ws, control);
      if (!r.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (orig < error_index) {
          error_index = orig;
          error = r.status();
        }
        return;  // abandon this slot's remaining seeds
      }
      unique_vectors[idx] = std::move(r).value();
    }
  };

  if (slots == 1) {
    run_slot(0);
  } else {
    TaskGroup group(pool);
    for (index_t s = 0; s < slots; ++s) {
      group.Run([&run_slot, s] { run_slot(s); });
    }
    // A query that *throws* (e.g. an injected fault escaping as an
    // exception rather than a Status) is rethrown here by Wait; convert
    // it so batch callers always see a clean Status.
    try {
      group.Wait();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("batch query worker threw: ") +
                              e.what());
    }
  }

  if (error_index != std::numeric_limits<index_t>::max()) {
    return Status(error.code(), "batch query failed at seed index " +
                                    std::to_string(error_index) + ": " +
                                    error.message());
  }

  // Fan the unique results out to every requesting position.
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::size_t u = unique_of[i];
    if (topk_mode) {
      result.topk[i] = unique_topk[u];
    } else {
      result.vectors[i] = unique_vectors[u];
    }
    if (options_.collect_stats) result.stats[i] = unique_stats[u];
  }

  result.seconds = timer.Seconds();
  batch_span.Arg("seeds", static_cast<index_t>(seeds.size()));
  batch_span.Arg("unique_seeds", n);
  batch_span.Arg("slots", slots);
  return result;
}

Result<std::vector<index_t>> ReadSeedsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open seeds file: " + path);
  std::vector<index_t> seeds;
  std::string line;
  index_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    index_t seed = 0;
    if (!(ls >> seed)) {
      // Blank or comment-only line.
      std::string rest;
      ls.clear();
      ls >> rest;
      if (rest.empty()) continue;
      return Status::InvalidArgument("seeds file " + path + " line " +
                                     std::to_string(line_no) +
                                     ": expected an integer node id");
    }
    std::string trailing;
    if (ls >> trailing) {
      return Status::InvalidArgument("seeds file " + path + " line " +
                                     std::to_string(line_no) +
                                     ": trailing content after seed");
    }
    seeds.push_back(seed);
  }
  return seeds;
}

}  // namespace bepi
