// Solver resilience layer for the BePI query path.
//
// The paper's query phase (Algorithm 4) hinges on one iterative solve over
// the Schur complement S. In a serving system that solve must never abort
// or silently hand back an unconverged vector: ILU(0) can break down on
// degenerate graphs, GMRES can stagnate, and NaN/Inf can propagate from
// corrupted inputs. ResilientSchurSolver wraps the solve in a degradation
// chain — each hop trades speed for robustness, and the final hop (global
// power iteration on the original system, run by BepiSolver) is
// unconditionally convergent for RWR because the iteration matrix
// (1-c) Ã^T has spectral radius < 1:
//
//   1. ILU(0)+GMRES        (the paper's method; fastest)
//   2. Jacobi+GMRES        (survives ILU breakdown)
//   3. BiCGSTAB, no precond (different Krylov recurrence; survives GMRES
//                            stagnation)
//   4. power iteration     (always converges; slowest)
//   5. Monte-Carlo walks   (engine/mc, armed via BepiSolver::
//                           AttachMcFallback: failure-INDEPENDENT — walks
//                           the raw graph, sharing none of the
//                           preprocessed factors hops 1-4 all consume,
//                           and answers with an explicit confidence bound
//                           instead of a residual)
//
// Every attempt is recorded in a QueryReport so callers can observe which
// hops ran and why — no recoverable solver failure reaches std::abort.
#ifndef BEPI_CORE_RESILIENT_HPP_
#define BEPI_CORE_RESILIENT_HPP_

#include "core/decomposition.hpp"
#include "core/rwr.hpp"
#include "solver/ilu0.hpp"

namespace bepi {

struct GmresWorkspace;

struct ResilientSolveOptions {
  real_t tol = 1e-9;
  index_t max_iters = 10000;
  index_t gmres_restart = 100;
  /// When false the chain is disabled: only the primary configuration
  /// runs (the pre-resilience behavior, kept for ablations).
  bool enable_fallbacks = true;
  /// Optional reusable GMRES scratch (see solver/gmres.hpp); not owned,
  /// may be null. One workspace per concurrent solve.
  GmresWorkspace* gmres_workspace = nullptr;
  /// Cooperative cancellation, forwarded into every hop (GMRES restart
  /// cycles, BiCGSTAB/power iterations). When the token expires the chain
  /// stops degrading: the interrupted hop's best iterate is returned with
  /// the attempt recorded as kCancelled (see Solve). May be null.
  const CancelToken* cancel = nullptr;
  /// Request id of the serve request driving this solve (see
  /// server/protocol.hpp); attached to flight-recorder stage-hop events
  /// and hop trace spans. May be null outside the serve path.
  const char* request_id = nullptr;
  /// Initial iterate for the GMRES hops (may be null = start from zero).
  /// The MC warm start (QueryControl::warm_start_mc) lands here; a
  /// nonzero guess changes the iterate sequence, so the default path
  /// never sets it. Not owned; must outlive the solve.
  const Vector* x0 = nullptr;
};

/// Solves S x = b through the Krylov hops of the degradation chain.
/// Stateless per call: safe to construct on the stack per query. The
/// referenced matrix/preconditioner must outlive the call.
class ResilientSchurSolver {
 public:
  /// `ilu` may be null (BePI-B/S modes, or after an ILU(0) breakdown at
  /// preprocessing time); the chain then starts at the Jacobi hop. `op`,
  /// when non-null, is the operator the Krylov hops apply instead of a
  /// plain CsrOperator over `schur` — BepiSolver passes the bound
  /// KernelCsrOperator so the hops run the compact/fused kernels. It must
  /// represent exactly S (the Jacobi hop still reads `schur` directly).
  ResilientSchurSolver(const CsrMatrix& schur, const Ilu0* ilu,
                       ResilientSolveOptions options,
                       const LinearOperator* op = nullptr);

  /// Runs hops 1-3, appending one SolveAttempt per hop to `report`.
  /// Returns the first converged solution; a non-ok Status (kNotConverged)
  /// means every Krylov hop failed and the caller should fall back to
  /// global power iteration (hop 4). When options.cancel expires mid-hop
  /// the chain stops immediately and returns that hop's best iterate as an
  /// ok Result with report->final_outcome == kCancelled — the caller
  /// decides whether the partial vector (residual in the last attempt) is
  /// usable.
  Result<Vector> Solve(const Vector& b, QueryReport* report) const;

 private:
  const CsrMatrix& schur_;
  const Ilu0* ilu_;
  ResilientSolveOptions options_;
  const LinearOperator* op_;
};

/// Whether `dec` retains the blocks needed by GlobalPowerFallback (models
/// serialized before format v2 lack H11/H22 and cannot take the last hop).
bool SupportsGlobalPowerFallback(const HubSpokeDecomposition& dec);

/// Hop 4: power iteration r <- (I - H) r + cq on the full reordered
/// system, assembled blockwise from the decomposition. `cq` is the scaled
/// start vector c*q in reordered ids (length dec.n); the result is the
/// full reordered RWR vector. Appends its SolveAttempt to `report`.
/// Fails only on budget exhaustion (kNotConverged).
Result<Vector> GlobalPowerFallback(const HubSpokeDecomposition& dec,
                                   const Vector& cq,
                                   const ResilientSolveOptions& options,
                                   QueryReport* report);

}  // namespace bepi

#endif  // BEPI_CORE_RESILIENT_HPP_
