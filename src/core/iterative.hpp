// Iterative RWR baselines (paper Section 2.2):
//  - PowerSolver: power iteration r <- (1-c) Ã^T r + c q [33].
//  - GmresSolver: Krylov solution of H r = c q with GMRES [37].
// Both keep only O(m) state and pay the full iteration cost per query.
#ifndef BEPI_CORE_ITERATIVE_HPP_
#define BEPI_CORE_ITERATIVE_HPP_

#include "core/rwr.hpp"
#include "solver/gmres.hpp"

namespace bepi {

class PowerSolver final : public RwrSolver {
 public:
  explicit PowerSolver(RwrOptions options) : options_(options) {}

  std::string name() const override { return "Power"; }
  Status Preprocess(const Graph& g) override;
  Result<Vector> Query(index_t seed, QueryStats* stats = nullptr) const override;
  Result<Vector> QueryVector(const Vector& q,
                             QueryStats* stats = nullptr) const override;
  std::uint64_t PreprocessedBytes() const override {
    return normalized_transpose_.ByteSize();
  }

 private:
  Result<Vector> SolveRhs(Vector f, QueryStats* stats) const;

  RwrOptions options_;
  CsrMatrix normalized_transpose_;  // Ã^T
};

struct GmresSolverOptions : RwrOptions {
  index_t restart = 100;
};

class GmresSolver final : public RwrSolver {
 public:
  explicit GmresSolver(GmresSolverOptions options) : options_(options) {}

  std::string name() const override { return "GMRES"; }
  Status Preprocess(const Graph& g) override;
  Result<Vector> Query(index_t seed, QueryStats* stats = nullptr) const override;
  Result<Vector> QueryVector(const Vector& q,
                             QueryStats* stats = nullptr) const override;
  std::uint64_t PreprocessedBytes() const override { return h_.ByteSize(); }

 private:
  Result<Vector> SolveRhs(Vector b, QueryStats* stats) const;

  GmresSolverOptions options_;
  CsrMatrix h_;  // I - (1-c) Ã^T
};

}  // namespace bepi

#endif  // BEPI_CORE_ITERATIVE_HPP_
