// NB_LIN-style low-rank preprocessing baseline (Tong et al. [41], the
// paper's Section 5 "preprocessing methods"). Approximates W = Ã^T with a
// rank-k factorization W ~= Q B (randomized range finder), then answers
// queries through the Sherman-Morrison-Woodbury identity
//   (I - (1-c) Q B)^{-1} = I + (1-c) Q (I_k - (1-c) B Q)^{-1} B,
// so each query costs O(n k) dense work after an O(k) SpMV preprocessing
// pass. Like all low-rank methods it is *approximate*: accuracy depends on
// how well rank k captures W (bench_approx_tradeoff quantifies this).
#ifndef BEPI_CORE_NBLIN_HPP_
#define BEPI_CORE_NBLIN_HPP_

#include "core/rwr.hpp"
#include "sparse/dense.hpp"

namespace bepi {

struct NbLinOptions : RwrOptions {
  /// Rank of the approximation.
  index_t rank = 64;
  /// Subspace (power) iterations for the range finder; 1-2 sharpen the
  /// approximation of the dominant spectrum at the cost of extra SpMVs.
  index_t power_iterations = 1;
  std::uint64_t seed = 202;
};

class NbLinSolver final : public RwrSolver {
 public:
  explicit NbLinSolver(NbLinOptions options) : options_(options) {}

  std::string name() const override { return "NB_LIN"; }
  Status Preprocess(const Graph& g) override;
  Result<Vector> Query(index_t seed, QueryStats* stats = nullptr) const override;
  Result<Vector> QueryVector(const Vector& q,
                             QueryStats* stats = nullptr) const override;
  std::uint64_t PreprocessedBytes() const override {
    return q_basis_.ByteSize() + wq_.ByteSize() + core_inverse_.ByteSize();
  }

  index_t effective_rank() const { return q_basis_.cols(); }

 private:
  NbLinOptions options_;
  DenseMatrix q_basis_;       // Q: n x k orthonormal range basis
  DenseMatrix wq_;            // W Q = Ã^T Q: n x k (B = Q^T W, B^T = W^T Q...)
  DenseMatrix core_inverse_;  // (I_k - (1-c) B Q)^{-1}: k x k
};

}  // namespace bepi

#endif  // BEPI_CORE_NBLIN_HPP_
