#include "core/topk.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/metrics.hpp"

namespace bepi {
namespace {

/// Rounding slack on every derived bound: the bound arithmetic itself and
/// the kernel dot products it must dominate each round over a handful of
/// operations, so a relative pad of 1e-6 (plus a denormal-proof absolute
/// pad) keeps the bounds honest without costing measurable pruning power —
/// true scores live many orders of magnitude above 1e-280.
constexpr real_t kRelSlack = 1e-6;
constexpr real_t kAbsSlack = 1e-280;

inline real_t Pad(real_t v) { return v * (1.0 + kRelSlack) + kAbsSlack; }

/// One dot product of matrix row `r` against `x`, in exactly the
/// accumulation order of sparse/kernel.hpp RowDot — which both kernel
/// paths and every thread partition preserve per row — so each candidate
/// score is bit-identical to the dense solve's value.
inline real_t RowDot(const CsrMatrix& m, index_t r, const real_t* x) {
  const index_t* row_ptr = m.row_ptr().data();
  const index_t* col_idx = m.col_idx().data();
  const real_t* values = m.values().data();
  real_t sum = 0.0;
  const std::size_t end = static_cast<std::size_t>(row_ptr[r + 1]);
  for (std::size_t p = static_cast<std::size_t>(row_ptr[r]); p < end; ++p) {
    sum += values[p] * x[static_cast<std::size_t>(col_idx[p])];
  }
  return sum;
}

/// Absolute row sums of a CSR matrix (the sup-norm amplification of each
/// output coordinate).
std::vector<real_t> AbsRowSums(const CsrMatrix& m) {
  std::vector<real_t> sums(static_cast<std::size_t>(m.rows()), 0.0);
  const std::vector<index_t>& row_ptr = m.row_ptr();
  const std::vector<real_t>& values = m.values();
  for (index_t r = 0; r < m.rows(); ++r) {
    real_t s = 0.0;
    for (index_t p = row_ptr[static_cast<std::size_t>(r)];
         p < row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      s += std::abs(values[static_cast<std::size_t>(p)]);
    }
    sums[static_cast<std::size_t>(r)] = s;
  }
  return sums;
}

/// spmv.bytes traffic model for one SpMV over the whole matrix.
std::uint64_t DenseSpmvBytes(const CsrMatrix& m, std::uint64_t idx) {
  return static_cast<std::uint64_t>(m.nnz()) * (idx + sizeof(real_t)) +
         static_cast<std::uint64_t>(m.rows() + 1) * idx +
         (static_cast<std::uint64_t>(m.cols()) +
          static_cast<std::uint64_t>(m.rows())) *
             sizeof(real_t);
}

}  // namespace

const char* TopKModeName(TopKMode mode) {
  return mode == TopKMode::kEps ? "eps" : "exact";
}

real_t TopKBoundTables::R1RowBound(index_t row, real_t r2_max) const {
  const index_t b = row_block[static_cast<std::size_t>(row)];
  return Pad(au[static_cast<std::size_t>(row)] *
             block_al_max[static_cast<std::size_t>(b)] *
             block_a12_max[static_cast<std::size_t>(b)] * r2_max);
}

TopKBoundTables BuildTopKBoundTables(const HubSpokeDecomposition& dec) {
  TopKBoundTables t;
  // Models loaded without a block layout (files predating the "blocks"
  // section) fall back to one block spanning every spoke: L1/U1 are block
  // diagonal, hence trivially diagonal w.r.t. the single block, so every
  // bound stays valid — spoke pruning just becomes all-or-nothing.
  std::vector<index_t> sizes = dec.block_sizes;
  if (sizes.empty() && dec.n1 > 0) sizes.push_back(dec.n1);
  const std::size_t nb = sizes.size();
  t.block_start.resize(nb + 1, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    t.block_start[b + 1] = t.block_start[b] + sizes[b];
  }
  BEPI_CHECK(nb == 0 || t.block_start[nb] == dec.n1);
  t.row_block.resize(static_cast<std::size_t>(dec.n1));
  for (std::size_t b = 0; b < nb; ++b) {
    for (index_t i = t.block_start[b]; i < t.block_start[b + 1]; ++i) {
      t.row_block[static_cast<std::size_t>(i)] = static_cast<index_t>(b);
    }
  }
  t.au = AbsRowSums(dec.u1_inv);
  t.a12 = AbsRowSums(dec.h12);
  const std::vector<real_t> al = AbsRowSums(dec.l1_inv);
  t.block_al_max.assign(nb, 0.0);
  t.block_a12_max.assign(nb, 0.0);
  std::vector<real_t> block_au_max(nb, 0.0);
  for (index_t i = 0; i < dec.n1; ++i) {
    const std::size_t b =
        static_cast<std::size_t>(t.row_block[static_cast<std::size_t>(i)]);
    t.block_al_max[b] =
        std::max(t.block_al_max[b], al[static_cast<std::size_t>(i)]);
    t.block_a12_max[b] =
        std::max(t.block_a12_max[b], t.a12[static_cast<std::size_t>(i)]);
    block_au_max[b] =
        std::max(block_au_max[b], t.au[static_cast<std::size_t>(i)]);
  }
  for (std::size_t b = 0; b < nb; ++b) {
    t.r1_coeff_max =
        std::max(t.r1_coeff_max,
                 block_au_max[b] * t.block_al_max[b] * t.block_a12_max[b]);
  }
  t.a31 = AbsRowSums(dec.h31);
  t.a32 = AbsRowSums(dec.h32);
  for (real_t v : t.a31) t.a31_max = std::max(t.a31_max, v);
  for (real_t v : t.a32) t.a32_max = std::max(t.a32_max, v);
  return t;
}

real_t ScoreErrorBound(const TopKBoundTables& tables, real_t residual_norm1,
                       real_t restart_prob) {
  // ||dr2||_inf <= ||S^{-1}||_1 ||rho||_1 <= ||rho||_1 / c: S^{-1} is the
  // hub-hub block of H^{-1}, and ||H^{-1}||_1 <= sum_t (1-c)^t = 1/c
  // because the columns of (1-c) A~^T sum to at most 1-c.
  const real_t err2 = residual_norm1 / restart_prob;
  // Propagated through back-substitution: dr1 = U1^{-1} L1^{-1} H12 dr2,
  // dr3 = H31 dr1 + H32 dr2, each bounded by the absolute-row-sum tables.
  const real_t err1 = tables.r1_coeff_max * err2;
  const real_t err3 = tables.a31_max * err1 + tables.a32_max * err2;
  return Pad(std::max(err2, std::max(err1, err3)));
}

real_t FullSystemScoreBound(real_t residual_norm1, real_t restart_prob) {
  return Pad(residual_norm1 / restart_prob);
}

std::uint64_t DenseBackSubstitutionBytes(const HubSpokeDecomposition& dec,
                                         bool compact_path) {
  const std::uint64_t idx = compact_path ? 4 : 8;
  return DenseSpmvBytes(dec.h12, idx) + DenseSpmvBytes(dec.l1_inv, idx) +
         DenseSpmvBytes(dec.u1_inv, idx) + DenseSpmvBytes(dec.h31, idx) +
         DenseSpmvBytes(dec.h32, idx);
}

void CountTopKDenseFallback() {
  if (!MetricsEnabled()) return;
  // Registered together with the counters PrunedTopK owns so any top-k
  // activity publishes the full topk.* key set (the docs glossary
  // cross-check relies on deterministic keys).
  BEPI_METRIC_COUNTER(queries, "topk.queries");
  BEPI_METRIC_COUNTER(candidates, "topk.candidates");
  BEPI_METRIC_COUNTER(pruned_rows, "topk.pruned_rows");
  BEPI_METRIC_COUNTER(bytes, "topk.bytes_touched");
  BEPI_METRIC_COUNTER(fallbacks, "topk.dense_fallbacks");
  (void)candidates;
  (void)pruned_rows;
  (void)bytes;
  queries->Increment();
  fallbacks->Increment();
}

TopKResult PrunedTopK(const HubSpokeDecomposition& dec,
                      const TopKBoundTables& tables,
                      const Permutation& inverse_perm, bool compact_path,
                      const Vector& cq1, const Vector& cq3, const Vector& r2,
                      real_t score_bound, const TopKOptions& opts) {
  BEPI_CHECK(opts.k >= 1);
  const index_t n1 = dec.n1, n2 = dec.n2, n3 = dec.n3, n = dec.n;
  // Block layout from the tables, not dec.block_sizes: the tables
  // synthesize a single block when the model carries no layout.
  const std::size_t nb = tables.block_start.size() - 1;
  const std::uint64_t idx_bytes = compact_path ? 4 : 8;
  constexpr real_t kInf = std::numeric_limits<real_t>::infinity();

  TopKResult out;
  out.error_bound = score_bound;
  out.pruned = true;

  real_t r2_max = 0.0;
  for (real_t v : r2) r2_max = std::max(r2_max, std::abs(v));

  // Per-row streaming cost of the pruned path: the row's slice of the
  // index/value arrays, its two row_ptr entries, one operand read per
  // stored entry and the output write.
  auto touch_row = [&](const CsrMatrix& m, index_t r) {
    const std::uint64_t len = static_cast<std::uint64_t>(m.RowNnz(r));
    out.bytes_touched += len * (idx_bytes + 2 * sizeof(real_t)) +
                         2 * idx_bytes + sizeof(real_t);
  };

  // Back-substitution scratch, full length but only filled blockwise:
  // L1^{-1}/U1^{-1} are block diagonal, so rows of a computed block never
  // read outside it, and H31 rows of candidates only read blocks the
  // closure below forces computed.
  Vector rhs1(static_cast<std::size_t>(n1), 0.0);
  Vector s1(static_cast<std::size_t>(n1), 0.0);
  Vector r1(static_cast<std::size_t>(n1), 0.0);
  std::vector<char> computed(nb, 0);
  // Replicates the dense sequence per row: rhs1 = cq1 - H12 r2 (the
  // MultiplyAdd alpha = -1.0 form), then the two triangular solves as
  // plain Multiply row dots.
  auto compute_block = [&](index_t b) {
    if (computed[static_cast<std::size_t>(b)]) return;
    computed[static_cast<std::size_t>(b)] = 1;
    const index_t bs = tables.block_start[static_cast<std::size_t>(b)];
    const index_t be = tables.block_start[static_cast<std::size_t>(b) + 1];
    for (index_t i = bs; i < be; ++i) {
      rhs1[static_cast<std::size_t>(i)] =
          cq1[static_cast<std::size_t>(i)] + (-1.0) * RowDot(dec.h12, i, r2.data());
      touch_row(dec.h12, i);
    }
    for (index_t i = bs; i < be; ++i) {
      s1[static_cast<std::size_t>(i)] = RowDot(dec.l1_inv, i, rhs1.data());
      touch_row(dec.l1_inv, i);
    }
    for (index_t i = bs; i < be; ++i) {
      r1[static_cast<std::size_t>(i)] = RowDot(dec.u1_inv, i, s1.data());
      touch_row(dec.u1_inv, i);
    }
  };

  // The seed's block (when the seed is a spoke) carries the c*q1 term no
  // table bounds, so it is always computed up front; its rows then enter
  // candidate selection with exact (zero-width) intervals.
  index_t seed_pos = -1;
  for (index_t i = 0; i < n1; ++i) {
    if (cq1[static_cast<std::size_t>(i)] != 0.0) {
      seed_pos = i;
      compute_block(tables.row_block[static_cast<std::size_t>(i)]);
    }
  }
  (void)seed_pos;

  // Score intervals per reordered position: [lb, ub] always contains the
  // dense solve's computed value for that node.
  Vector lb(static_cast<std::size_t>(n)), ub(static_cast<std::size_t>(n));
  real_t r1_max = Pad(tables.r1_coeff_max * r2_max);
  for (std::size_t b = 0; b < nb; ++b) {
    if (!computed[b]) continue;
    for (index_t i = tables.block_start[b]; i < tables.block_start[b + 1];
         ++i) {
      r1_max = std::max(r1_max, std::abs(r1[static_cast<std::size_t>(i)]));
    }
  }
  for (index_t i = 0; i < n1; ++i) {
    if (computed[static_cast<std::size_t>(
            tables.row_block[static_cast<std::size_t>(i)])]) {
      lb[static_cast<std::size_t>(i)] = ub[static_cast<std::size_t>(i)] =
          r1[static_cast<std::size_t>(i)];
    } else {
      const real_t w = tables.R1RowBound(i, r2_max);
      lb[static_cast<std::size_t>(i)] = -w;
      ub[static_cast<std::size_t>(i)] = w;
    }
  }
  for (index_t j = 0; j < n2; ++j) {
    lb[static_cast<std::size_t>(n1 + j)] = ub[static_cast<std::size_t>(n1 + j)] =
        r2[static_cast<std::size_t>(j)];
  }
  for (index_t i = 0; i < n3; ++i) {
    const real_t center = cq3[static_cast<std::size_t>(i)];
    const real_t w = Pad(tables.a31[static_cast<std::size_t>(i)] * r1_max +
                         tables.a32[static_cast<std::size_t>(i)] * r2_max);
    lb[static_cast<std::size_t>(n1 + n2 + i)] = center - w;
    ub[static_cast<std::size_t>(n1 + n2 + i)] = center + w;
  }
  if (opts.exclude >= 0 && opts.exclude < n) {
    const std::size_t pos =
        static_cast<std::size_t>(dec.perm[static_cast<std::size_t>(opts.exclude)]);
    lb[pos] = ub[pos] = -kInf;
  }

  // tau = k-th largest lower bound: at least k nodes score >= tau, so any
  // node with ub < tau is strictly below k others and provably out —
  // boundary ties included, whatever the id tie-break says.
  real_t tau = -kInf;
  if (static_cast<std::size_t>(opts.k) < lb.size()) {
    Vector lbs = lb;
    std::nth_element(lbs.begin(),
                     lbs.begin() + static_cast<std::ptrdiff_t>(opts.k - 1),
                     lbs.end(), std::greater<real_t>());
    tau = lbs[static_cast<std::size_t>(opts.k - 1)];
  }

  // Candidate rows plus the closure of H11 blocks their scores read:
  // every candidate spoke's own block, and every block referenced by a
  // candidate deadend's H31 row.
  std::vector<index_t> cand1, cand3;
  for (index_t i = 0; i < n1; ++i) {
    if (ub[static_cast<std::size_t>(i)] >= tau) cand1.push_back(i);
  }
  for (index_t i = 0; i < n3; ++i) {
    if (ub[static_cast<std::size_t>(n1 + n2 + i)] >= tau) cand3.push_back(i);
  }
  auto block_of = [&](index_t col) {
    return static_cast<index_t>(
        std::upper_bound(tables.block_start.begin(), tables.block_start.end(),
                         col) -
        tables.block_start.begin() - 1);
  };
  for (index_t i : cand1) {
    compute_block(tables.row_block[static_cast<std::size_t>(i)]);
  }
  const std::vector<index_t>& h31_ptr = dec.h31.row_ptr();
  const std::vector<index_t>& h31_col = dec.h31.col_idx();
  for (index_t i : cand3) {
    for (index_t p = h31_ptr[static_cast<std::size_t>(i)];
         p < h31_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
      compute_block(block_of(h31_col[static_cast<std::size_t>(p)]));
    }
  }

  // Candidate scores, dense order per row: r3 = (cq3 - H31 r1) - H32 r2.
  out.entries.reserve(cand1.size() + cand3.size() + static_cast<std::size_t>(n2));
  const index_t exclude_pos =
      (opts.exclude >= 0 && opts.exclude < n)
          ? dec.perm[static_cast<std::size_t>(opts.exclude)]
          : static_cast<index_t>(-1);
  auto emit = [&](index_t pos, real_t score) {
    if (pos == exclude_pos) return;
    out.entries.emplace_back(inverse_perm[static_cast<std::size_t>(pos)],
                             score);
  };
  for (index_t i : cand1) emit(i, r1[static_cast<std::size_t>(i)]);
  for (index_t j = 0; j < n2; ++j) {
    if (ub[static_cast<std::size_t>(n1 + j)] >= tau) {
      emit(n1 + j, r2[static_cast<std::size_t>(j)]);
    }
  }
  for (index_t i : cand3) {
    real_t v = cq3[static_cast<std::size_t>(i)] +
               (-1.0) * RowDot(dec.h31, i, r1.data());
    v += (-1.0) * RowDot(dec.h32, i, r2.data());
    touch_row(dec.h31, i);
    touch_row(dec.h32, i);
    emit(n1 + n2 + i, v);
  }

  // Same comparator as core/rwr.hpp TopK: score descending, ties by node
  // id — the candidate superset sorted this way shares its first k entries
  // with the sorted full vector.
  std::sort(out.entries.begin(), out.entries.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  if (out.entries.size() > static_cast<std::size_t>(opts.k)) {
    out.entries.resize(static_cast<std::size_t>(opts.k));
  }

  index_t computed_rows = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    if (computed[b]) {
      computed_rows += tables.block_start[b + 1] - tables.block_start[b];
    }
  }
  computed_rows += static_cast<index_t>(cand3.size());
  out.candidates = computed_rows;
  out.pruned_rows = n1 + n3 - computed_rows;

  if (MetricsEnabled()) {
    BEPI_METRIC_COUNTER(queries, "topk.queries");
    BEPI_METRIC_COUNTER(candidates, "topk.candidates");
    BEPI_METRIC_COUNTER(pruned_rows, "topk.pruned_rows");
    BEPI_METRIC_COUNTER(bytes, "topk.bytes_touched");
    BEPI_METRIC_COUNTER(fallbacks, "topk.dense_fallbacks");
    (void)fallbacks;
    queries->Increment();
    candidates->Increment(static_cast<std::uint64_t>(out.candidates));
    pruned_rows->Increment(static_cast<std::uint64_t>(out.pruned_rows));
    bytes->Increment(out.bytes_touched);
  }
  return out;
}

}  // namespace bepi
