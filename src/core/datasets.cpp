#include "core/datasets.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "graph/generators.hpp"

namespace bepi {

// Edge/node ratios and deadend fractions follow Table 2 of the paper:
//   Slashdot 6.5, Wikipedia 16.2, Baidu 7.9, Flickr 14.4, LiveJournal
//   14.1, WikiLink 30.4, Twitter 35.3, Friendster 37.8; deadend fractions
//   n3/n from the same table. Node counts are scaled ~1000x down.
const std::vector<DatasetSpec>& PaperDatasets() {
  static const std::vector<DatasetSpec> kDatasets = {
      {"Slashdot-sim", 6000, 39000, 0.42, 0.30, 101},
      {"Wikipedia-sim", 7000, 113000, 0.04, 0.25, 102},
      {"Baidu-sim", 16000, 126000, 0.05, 0.20, 103},
      {"Flickr-sim", 20000, 288000, 0.16, 0.20, 104},
      {"LiveJournal-sim", 28000, 395000, 0.11, 0.30, 105},
      {"WikiLink-sim", 36000, 1094000, 0.002, 0.20, 106},
      {"Twitter-sim", 48000, 1690000, 0.037, 0.20, 107},
      {"Friendster-sim", 64000, 2420000, 0.18, 0.20, 108},
  };
  return kDatasets;
}

// Appendix J (Table 5): Gnutella 62.6K/147.9K, HepPH 34.5K/421.6K,
// Facebook 47.0K/877.0K, Digg 279.6K/1.73M — scaled ~10x down.
const std::vector<DatasetSpec>& AppendixDatasets() {
  static const std::vector<DatasetSpec> kDatasets = {
      {"Gnutella-sim", 6200, 14800, 0.10, 0.20, 201},
      {"HepPH-sim", 3500, 42000, 0.02, 0.20, 202},
      {"Facebook-sim", 4700, 88000, 0.02, 0.20, 203},
      {"Digg-sim", 28000, 173000, 0.15, 0.20, 204},
  };
  return kDatasets;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return s;
  };
  const std::string needle = lower(name);
  for (const auto* registry : {&PaperDatasets(), &AppendixDatasets()}) {
    for (const DatasetSpec& spec : *registry) {
      if (lower(spec.name) == needle) return spec;
    }
  }
  return Status::NotFound("unknown dataset: " + name);
}

namespace {

/// Adjusts the graph so the deadend share matches `fraction` closely:
/// R-MAT leaves "natural" deadends (nodes never drawn as a source), so the
/// generator may have too many (fixed by giving excess deadends out-edges)
/// or too few (fixed by removing out-edges of extra nodes).
Result<Graph> AdjustDeadends(const Graph& g, real_t fraction, Rng* rng) {
  const index_t n = g.num_nodes();
  const index_t target = static_cast<index_t>(
      std::llround(fraction * static_cast<real_t>(n)));
  std::vector<index_t> deadends = g.Deadends();
  const index_t current = static_cast<index_t>(deadends.size());
  if (current == target) return g;

  std::vector<Edge> edges = g.EdgeList();
  if (current > target) {
    // Too many: give `current - target` random deadends a couple of
    // out-edges so they stop being deadends.
    rng->Shuffle(&deadends);
    for (index_t i = 0; i < current - target; ++i) {
      const index_t u = deadends[static_cast<std::size_t>(i)];
      for (int k = 0; k < 2; ++k) {
        index_t v = rng->UniformIndex(0, n - 1);
        if (v == u) v = (v + 1) % n;
        edges.push_back({u, v});
      }
    }
  } else {
    // Too few: strip the out-edges of `target - current` non-deadends.
    std::vector<index_t> candidates;
    for (index_t u = 0; u < n; ++u) {
      if (!g.IsDeadend(u)) candidates.push_back(u);
    }
    rng->Shuffle(&candidates);
    std::vector<bool> strip(static_cast<std::size_t>(n), false);
    for (index_t i = 0; i < target - current; ++i) {
      strip[static_cast<std::size_t>(candidates[static_cast<std::size_t>(i)])] =
          true;
    }
    std::vector<Edge> kept;
    kept.reserve(edges.size());
    for (const Edge& e : edges) {
      if (!strip[static_cast<std::size_t>(e.src)]) kept.push_back(e);
    }
    edges = std::move(kept);
  }
  return Graph::FromEdges(n, edges);
}

}  // namespace

namespace {

/// Redirects a fraction of edge destinations into the source's community
/// (contiguous blocks of `community_size` node ids). This plants the
/// block/community structure of real graphs, which R-MAT alone lacks.
Result<Graph> LocalizeEdges(const Graph& g, real_t fraction,
                            index_t community_size, Rng* rng) {
  if (fraction <= 0.0 || community_size <= 1) return g;
  const index_t n = g.num_nodes();
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const Edge& e : g.EdgeList()) {
    if (rng->NextDouble() < fraction) {
      const index_t base = (e.src / community_size) * community_size;
      index_t v = base + rng->UniformIndex(0, community_size - 1);
      if (v >= n || v == e.src) v = e.dst;
      edges.push_back({e.src, v});
    } else {
      edges.push_back(e);
    }
  }
  return Graph::FromEdges(n, edges);
}

}  // namespace

Result<Graph> GenerateDataset(const DatasetSpec& spec) {
  Rng rng(spec.seed);
  RmatOptions options;
  options.num_nodes = spec.num_nodes;
  options.num_edges = spec.num_edges;
  BEPI_ASSIGN_OR_RETURN(Graph raw, GenerateRmat(options, &rng));
  BEPI_ASSIGN_OR_RETURN(
      Graph localized,
      LocalizeEdges(raw, spec.locality, spec.community_size, &rng));
  return AdjustDeadends(localized, spec.deadend_fraction, &rng);
}

DatasetSpec ScaleSpec(const DatasetSpec& spec, real_t factor) {
  DatasetSpec scaled = spec;
  scaled.num_nodes = std::max<index_t>(
      1, static_cast<index_t>(std::llround(spec.num_nodes * factor)));
  scaled.num_edges = std::max<index_t>(
      0, static_cast<index_t>(std::llround(spec.num_edges * factor)));
  return scaled;
}

real_t BenchScaleFromEnv() {
  const char* env = std::getenv("BEPI_BENCH_SCALE");
  if (env == nullptr || env[0] == '\0') return 1.0;
  const std::string value = env;
  if (value == "quick") return 1.0;
  if (value == "large") return 3.0;
  const double parsed = std::atof(env);
  return parsed > 0.0 ? parsed : 1.0;
}

}  // namespace bepi
