// LU-decomposition baseline (Fujiwara et al. [14]): reorder H by node
// degree (low-degree first, to limit fill-in), sparse-LU factor it once,
// and answer queries with two sparse triangular solves. Preprocessing cost
// and factor fill-in grow super-linearly, which is why this method runs
// out of memory/time on large graphs in the paper.
#ifndef BEPI_CORE_LU_RWR_HPP_
#define BEPI_CORE_LU_RWR_HPP_

#include <optional>

#include "core/rwr.hpp"
#include "solver/sparse_lu.hpp"
#include "sparse/permute.hpp"

namespace bepi {

struct LuSolverOptions : RwrOptions {};

class LuSolver final : public RwrSolver {
 public:
  explicit LuSolver(LuSolverOptions options) : options_(options) {}

  std::string name() const override { return "LU"; }
  Status Preprocess(const Graph& g) override;
  Result<Vector> Query(index_t seed, QueryStats* stats = nullptr) const override;
  Result<Vector> QueryVector(const Vector& q,
                             QueryStats* stats = nullptr) const override;
  std::uint64_t PreprocessedBytes() const override;

  /// Fill-in of the factors (for the scalability analysis).
  index_t FactorNnz() const;

 private:
  LuSolverOptions options_;
  std::optional<SparseLu> lu_;
  Permutation perm_;          // old -> new
  Permutation inverse_perm_;  // new -> old
  index_t n_ = 0;
  bool preprocessed_ = false;
};

}  // namespace bepi

#endif  // BEPI_CORE_LU_RWR_HPP_
