#include "core/bear.hpp"

#include "common/timer.hpp"
#include "solver/dense_lu.hpp"

namespace bepi {

Status BearSolver::Preprocess(const Graph& g) {
  Timer timer;
  preprocessed_ = false;

  MemoryBudget budget(options_.memory_budget_bytes);
  DecompositionOptions dopts;
  dopts.restart_prob = options_.restart_prob;
  dopts.hub_ratio = options_.hub_ratio;
  BEPI_ASSIGN_OR_RETURN(dec_, BuildDecomposition(g, dopts, &budget));

  // The step BePI avoids: dense inversion of the n2 x n2 Schur complement.
  // Check the budget before allocating (this is where Bear dies on large
  // graphs in the paper). The inversion pipeline holds the packed LU
  // factors and the growing inverse simultaneously, so its peak is two
  // dense n2 x n2 matrices.
  const std::uint64_t dense_bytes = 2 * static_cast<std::uint64_t>(dec_.n2) *
                                    static_cast<std::uint64_t>(dec_.n2) *
                                    sizeof(real_t);
  BEPI_RETURN_IF_ERROR(budget.Charge(dense_bytes, "dense S^{-1}"));
  if (dec_.n2 > 0) {
    BEPI_ASSIGN_OR_RETURN(DenseLu lu, DenseLu::Factor(dec_.schur.ToDense()));
    schur_inverse_ = lu.Inverse();
  } else {
    schur_inverse_ = DenseMatrix();
  }
  inverse_perm_ = InversePermutation(dec_.perm);
  preprocess_seconds_ = timer.Seconds();
  preprocessed_ = true;
  return Status::Ok();
}

Result<Vector> BearSolver::Query(index_t seed, QueryStats* stats) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= dec_.n) {
    return Status::OutOfRange("seed out of range");
  }
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2, n3 = dec_.n3;

  const index_t pos = dec_.perm[static_cast<std::size_t>(seed)];
  Vector cq1(static_cast<std::size_t>(n1), 0.0);
  Vector cq2(static_cast<std::size_t>(n2), 0.0);
  Vector cq3(static_cast<std::size_t>(n3), 0.0);
  if (pos < n1) {
    cq1[static_cast<std::size_t>(pos)] = c;
  } else if (pos < n1 + n2) {
    cq2[static_cast<std::size_t>(pos - n1)] = c;
  } else {
    cq3[static_cast<std::size_t>(pos - n1 - n2)] = c;
  }
  return SolveFromSlices(cq1, cq2, cq3, stats);
}

Result<Vector> BearSolver::QueryVector(const Vector& q,
                                       QueryStats* stats) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != dec_.n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  const real_t c = options_.restart_prob;
  const index_t n1 = dec_.n1, n2 = dec_.n2;
  Vector cq1(static_cast<std::size_t>(dec_.n1), 0.0);
  Vector cq2(static_cast<std::size_t>(dec_.n2), 0.0);
  Vector cq3(static_cast<std::size_t>(dec_.n3), 0.0);
  for (index_t u = 0; u < dec_.n; ++u) {
    const real_t v = q[static_cast<std::size_t>(u)];
    if (v == 0.0) continue;
    const index_t pos = dec_.perm[static_cast<std::size_t>(u)];
    if (pos < n1) {
      cq1[static_cast<std::size_t>(pos)] = c * v;
    } else if (pos < n1 + n2) {
      cq2[static_cast<std::size_t>(pos - n1)] = c * v;
    } else {
      cq3[static_cast<std::size_t>(pos - n1 - n2)] = c * v;
    }
  }
  return SolveFromSlices(cq1, cq2, cq3, stats);
}

Result<Vector> BearSolver::SolveFromSlices(const Vector& cq1,
                                           const Vector& cq2,
                                           const Vector& cq3,
                                           QueryStats* stats) const {
  Timer timer;
  const index_t n1 = dec_.n1, n2 = dec_.n2, n3 = dec_.n3;

  // Identical block elimination, but r2 = S^{-1} q2~ is a direct product.
  Vector q2_tilde = cq2;
  if (n1 > 0) {
    const Vector h11inv_cq1 = dec_.ApplyH11Inverse(cq1);
    dec_.h21.MultiplyAdd(-1.0, h11inv_cq1, &q2_tilde);
  }
  Vector r2 = n2 > 0 ? schur_inverse_.Multiply(q2_tilde) : Vector();

  Vector r1;
  if (n1 > 0) {
    Vector rhs1 = cq1;
    dec_.h12.MultiplyAdd(-1.0, r2, &rhs1);
    r1 = dec_.ApplyH11Inverse(rhs1);
  }
  Vector r3 = cq3;
  if (n3 > 0) {
    if (n1 > 0) dec_.h31.MultiplyAdd(-1.0, r1, &r3);
    if (n2 > 0) dec_.h32.MultiplyAdd(-1.0, r2, &r3);
  }

  Vector result(static_cast<std::size_t>(dec_.n));
  for (index_t i = 0; i < n1; ++i) {
    result[static_cast<std::size_t>(inverse_perm_[static_cast<std::size_t>(i)])] =
        r1[static_cast<std::size_t>(i)];
  }
  for (index_t i = 0; i < n2; ++i) {
    result[static_cast<std::size_t>(
        inverse_perm_[static_cast<std::size_t>(n1 + i)])] =
        r2[static_cast<std::size_t>(i)];
  }
  for (index_t i = 0; i < n3; ++i) {
    result[static_cast<std::size_t>(
        inverse_perm_[static_cast<std::size_t>(n1 + n2 + i)])] =
        r3[static_cast<std::size_t>(i)];
  }
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
  }
  return result;
}

std::uint64_t BearSolver::PreprocessedBytes() const {
  return dec_.CommonBytes() + schur_inverse_.ByteSize();
}

}  // namespace bepi
