#include "core/budget.hpp"

#include "common/bytes.hpp"

namespace bepi {

Status MemoryBudget::Check(std::uint64_t bytes, const std::string& what) const {
  if (unlimited()) return Status::Ok();
  if (used_bytes_ + bytes > budget_bytes_) {
    return Status::ResourceExhausted(
        what + " needs " + HumanBytes(bytes) + " (" + HumanBytes(used_bytes_) +
        " already used) exceeding the budget of " + HumanBytes(budget_bytes_));
  }
  return Status::Ok();
}

Status MemoryBudget::Charge(std::uint64_t bytes, const std::string& what) {
  BEPI_RETURN_IF_ERROR(Check(bytes, what));
  used_bytes_ += bytes;
  return Status::Ok();
}

}  // namespace bepi
