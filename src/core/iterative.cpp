#include "core/iterative.hpp"

#include "common/timer.hpp"
#include "solver/power.hpp"

namespace bepi {

Status PowerSolver::Preprocess(const Graph& g) {
  Timer timer;
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  normalized_transpose_ = g.RowNormalizedAdjacency().Transpose();
  preprocess_seconds_ = timer.Seconds();
  return Status::Ok();
}

Result<Vector> PowerSolver::Query(index_t seed, QueryStats* stats) const {
  const index_t n = normalized_transpose_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= n) return Status::OutOfRange("seed out of range");
  return SolveRhs(StartingVector(n, seed, options_.restart_prob), stats);
}

Result<Vector> PowerSolver::QueryVector(const Vector& q,
                                        QueryStats* stats) const {
  const index_t n = normalized_transpose_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  Vector f = q;
  Scale(options_.restart_prob, &f);
  return SolveRhs(std::move(f), stats);
}

Result<Vector> PowerSolver::SolveRhs(Vector f, QueryStats* stats) const {
  Timer timer;

  // x <- G x + f with G = (1-c) Ã^T and f = c q.
  class ScaledOp final : public LinearOperator {
   public:
    ScaledOp(const CsrMatrix& m, real_t scale) : m_(m), scale_(scale) {}
    index_t size() const override { return m_.rows(); }
    void Apply(const Vector& x, Vector* y) const override {
      *y = m_.Multiply(x);
      Scale(scale_, y);
    }

   private:
    const CsrMatrix& m_;
    real_t scale_;
  };
  ScaledOp g_op(normalized_transpose_, 1.0 - options_.restart_prob);

  FixedPointOptions fp;
  fp.tol = options_.tolerance;
  fp.max_iters = options_.max_iterations;
  SolveStats solve_stats;
  BEPI_ASSIGN_OR_RETURN(Vector r,
                        FixedPointIteration(g_op, f, fp, &solve_stats));
  if (!solve_stats.converged) {
    return Status::NotConverged("power iteration did not reach tolerance " +
                                std::to_string(options_.tolerance) + " in " +
                                std::to_string(fp.max_iters) + " iterations");
  }
  if (stats != nullptr) {
    stats->seconds = timer.Seconds();
    stats->iterations = solve_stats.iterations;
    stats->total_iterations = solve_stats.iterations;
    stats->residual = solve_stats.relative_residual;
  }
  return r;
}

Status GmresSolver::Preprocess(const Graph& g) {
  Timer timer;
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  h_ = BuildH(g, options_.restart_prob);
  preprocess_seconds_ = timer.Seconds();
  return Status::Ok();
}

Result<Vector> GmresSolver::Query(index_t seed, QueryStats* stats) const {
  const index_t n = h_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= n) return Status::OutOfRange("seed out of range");
  return SolveRhs(StartingVector(n, seed, options_.restart_prob), stats);
}

Result<Vector> GmresSolver::QueryVector(const Vector& q,
                                        QueryStats* stats) const {
  const index_t n = h_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  Vector b = q;
  Scale(options_.restart_prob, &b);
  return SolveRhs(std::move(b), stats);
}

Result<Vector> GmresSolver::SolveRhs(Vector b, QueryStats* stats) const {
  Timer timer;
  CsrOperator op(h_);
  GmresOptions gm;
  gm.tol = options_.tolerance;
  gm.max_iters = options_.max_iterations;
  gm.restart = options_.restart;
  SolveStats solve_stats;
  BEPI_ASSIGN_OR_RETURN(Vector r, Gmres(op, b, gm, &solve_stats));
  if (!solve_stats.converged) {
    return Status::NotConverged("GMRES did not reach tolerance " +
                                std::to_string(options_.tolerance) + " in " +
                                std::to_string(gm.max_iters) + " iterations");
  }
  if (stats != nullptr) {
    stats->seconds = timer.Seconds();
    stats->iterations = solve_stats.iterations;
    stats->total_iterations = solve_stats.iterations;
    stats->residual = solve_stats.relative_residual;
  }
  return r;
}

}  // namespace bepi
