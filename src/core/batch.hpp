// Batched query execution: N independent RWR seeds answered concurrently
// over the process-global thread pool (common/parallel.hpp).
//
// Each concurrency slot owns one GmresWorkspace, so a steady-state batch
// loop performs no per-query heap allocation beyond the returned vectors.
// Queries are read-only over the preprocessed model and fully independent,
// which makes the parallelization embarrassingly simple — and because the
// numeric kernels are bit-identical at any thread count, a batch produces
// exactly the vectors a sequential loop over the same seeds would.
#ifndef BEPI_CORE_BATCH_HPP_
#define BEPI_CORE_BATCH_HPP_

#include <string>
#include <vector>

#include "core/bepi.hpp"

namespace bepi {

struct BatchQueryOptions {
  /// Upper bound on queries in flight. 0 means the ParallelContext thread
  /// count (i.e. --threads / BEPI_THREADS). With 1 effective slot the
  /// batch runs as a plain sequential loop on the calling thread.
  int max_concurrency = 0;
  /// Collect one QueryStats per seed into BatchQueryResult::stats.
  bool collect_stats = true;
  /// Cooperative cancellation, checked between queries and forwarded into
  /// each solve. An expired token fails the batch with the token's Status
  /// (batches are all-or-nothing; partial batch results are never
  /// returned). May be null.
  const CancelToken* cancel = nullptr;
  /// Batch-wide top-k execution (core/topk.hpp). topk.k == 0 (default)
  /// answers densely and fills BatchQueryResult::vectors; topk.k >= 1
  /// runs every seed through BepiSolver::QueryTopK with exactly these
  /// options (including `exclude`, applied to every seed verbatim) and
  /// fills BatchQueryResult::topk instead, leaving vectors empty.
  TopKOptions topk;
  /// Forwarded into every query's QueryControl::warm_start_mc (seed the
  /// Schur solve from the attached MC engine; off by default — a warm
  /// start changes the iterate sequence, so the bit-identity contract
  /// only holds on the default path).
  bool warm_start_mc = false;
};

struct BatchQueryResult {
  /// vectors[i] is the RWR vector for seeds[i] (positional order is
  /// preserved regardless of completion order). Empty in top-k mode.
  std::vector<Vector> vectors;
  /// topk[i] is the ranked answer for seeds[i] when options.topk.k >= 1.
  std::vector<TopKResult> topk;
  std::vector<QueryStats> stats;  // empty when collect_stats is false
  double seconds = 0.0;           // wall time for the whole batch
  double throughput_qps() const {
    const std::size_t queries = vectors.empty() ? topk.size() : vectors.size();
    return seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  }
};

/// Runs batches of seed queries against one preprocessed solver. The
/// solver must outlive the engine and stay unmodified while Run executes;
/// the engine itself is stateless across Run calls and safe to reuse.
class BatchQueryEngine {
 public:
  explicit BatchQueryEngine(const BepiSolver& solver,
                            BatchQueryOptions options = {});

  /// Answers every seed. On any per-query failure the whole batch fails
  /// with the first error in seed order (partial results are discarded —
  /// a batch is all-or-nothing so callers never pair vectors with the
  /// wrong seeds).
  Result<BatchQueryResult> Run(const std::vector<index_t>& seeds) const;

 private:
  const BepiSolver& solver_;
  BatchQueryOptions options_;
};

/// Parses a seeds file: one node id per line, blank lines and
/// '#'-prefixed comments ignored. Used by `bepi_cli query --seeds-file`.
Result<std::vector<index_t>> ReadSeedsFile(const std::string& path);

}  // namespace bepi

#endif  // BEPI_CORE_BATCH_HPP_
