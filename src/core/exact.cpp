#include "core/exact.hpp"

#include "common/timer.hpp"
#include "core/budget.hpp"
#include "solver/dense_lu.hpp"

namespace bepi {

Status ExactSolver::Preprocess(const Graph& g) {
  Timer timer;
  const index_t n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  MemoryBudget budget(options_.memory_budget_bytes);
  BEPI_RETURN_IF_ERROR(budget.Charge(
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) *
          sizeof(real_t),
      "dense H^-1"));
  const CsrMatrix h = BuildH(g, options_.restart_prob);
  BEPI_ASSIGN_OR_RETURN(DenseLu lu, DenseLu::Factor(h.ToDense()));
  h_inverse_ = lu.Inverse();
  preprocess_seconds_ = timer.Seconds();
  return Status::Ok();
}

Result<Vector> ExactSolver::Query(index_t seed, QueryStats* stats) const {
  const index_t n = h_inverse_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= n) return Status::OutOfRange("seed out of range");
  Timer timer;
  // r = c * H^{-1} q = c * column `seed` of H^{-1}.
  Vector r(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    r[static_cast<std::size_t>(i)] =
        options_.restart_prob * h_inverse_.At(i, seed);
  }
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
  }
  return r;
}

Result<Vector> ExactSolver::QueryVector(const Vector& q,
                                        QueryStats* stats) const {
  const index_t n = h_inverse_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  Timer timer;
  Vector r = h_inverse_.Multiply(q);
  Scale(options_.restart_prob, &r);
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
  }
  return r;
}

}  // namespace bepi
