#include "core/lu_rwr.hpp"

#include "common/timer.hpp"
#include "core/budget.hpp"
#include "graph/reorder.hpp"

namespace bepi {

Status LuSolver::Preprocess(const Graph& g) {
  Timer timer;
  preprocessed_ = false;
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  n_ = g.num_nodes();

  // Degree-ascending reordering (the paper's LU baseline reorders H "based
  // on nodes' degrees and community structures" to keep factors sparse).
  perm_ = DegreeAscendingOrder(g);
  inverse_perm_ = InversePermutation(perm_);
  const CsrMatrix h = BuildH(g, options_.restart_prob);
  BEPI_ASSIGN_OR_RETURN(CsrMatrix h_perm, PermuteSymmetric(h, perm_));

  // Derive the fill cap from the memory budget (each factor entry costs a
  // value + an index; row pointers are negligible).
  index_t fill_limit = 0;
  if (options_.memory_budget_bytes > 0) {
    fill_limit = static_cast<index_t>(options_.memory_budget_bytes /
                                      (sizeof(real_t) + sizeof(index_t)));
  }
  BEPI_ASSIGN_OR_RETURN(SparseLu lu, SparseLu::Factor(h_perm, fill_limit));
  MemoryBudget budget(options_.memory_budget_bytes);
  BEPI_RETURN_IF_ERROR(budget.Charge(lu.ByteSize(), "sparse LU factors of H"));
  lu_ = std::move(lu);
  preprocess_seconds_ = timer.Seconds();
  preprocessed_ = true;
  return Status::Ok();
}

Result<Vector> LuSolver::Query(index_t seed, QueryStats* stats) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= n_) return Status::OutOfRange("seed out of range");
  Timer timer;
  // Solve (P H P^T) (P r) = c (P q): the permuted rhs has its single entry
  // at the reordered seed position.
  Vector b(static_cast<std::size_t>(n_), 0.0);
  b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(seed)])] =
      options_.restart_prob;
  BEPI_ASSIGN_OR_RETURN(Vector x, lu_->Solve(b));
  Vector r(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i) {
    r[static_cast<std::size_t>(inverse_perm_[static_cast<std::size_t>(i)])] =
        x[static_cast<std::size_t>(i)];
  }
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
  }
  return r;
}

Result<Vector> LuSolver::QueryVector(const Vector& q,
                                     QueryStats* stats) const {
  if (!preprocessed_) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != n_) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  Timer timer;
  Vector b(static_cast<std::size_t>(n_), 0.0);
  for (index_t u = 0; u < n_; ++u) {
    b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(u)])] =
        options_.restart_prob * q[static_cast<std::size_t>(u)];
  }
  BEPI_ASSIGN_OR_RETURN(Vector x, lu_->Solve(b));
  Vector r(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i) {
    r[static_cast<std::size_t>(inverse_perm_[static_cast<std::size_t>(i)])] =
        x[static_cast<std::size_t>(i)];
  }
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
  }
  return r;
}

std::uint64_t LuSolver::PreprocessedBytes() const {
  return lu_.has_value() ? lu_->ByteSize() : 0;
}

index_t LuSolver::FactorNnz() const {
  return lu_.has_value() ? lu_->FillNnz() : 0;
}

}  // namespace bepi
