// Public RWR solver interface shared by BePI and all baselines.
//
// Usage (see examples/quickstart.cpp):
//   bepi::BepiSolver solver(options);
//   solver.Preprocess(graph);                  // once per graph
//   bepi::Vector r = solver.Query(seed).value();  // once per seed
#ifndef BEPI_CORE_RWR_HPP_
#define BEPI_CORE_RWR_HPP_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "graph/graph.hpp"
#include "solver/outcome.hpp"
#include "sparse/csr.hpp"

namespace bepi {

/// Options common to every RWR method.
struct RwrOptions {
  /// Restart probability c. The paper (and this library's defaults
  /// throughout) uses 0.05.
  real_t restart_prob = 0.05;
  /// Error tolerance epsilon for iterative inner solvers.
  real_t tolerance = 1e-9;
  /// Iteration budget for iterative inner solvers.
  index_t max_iterations = 10000;
  /// Memory budget in bytes for preprocessed data (0 = unlimited).
  /// Preprocessing fails with ResourceExhausted when exceeded, mirroring
  /// the paper's out-of-memory runs.
  std::uint64_t memory_budget_bytes = 0;
};

/// How a resilient query ended: every solver stage that ran (in order)
/// and the verdict of the one that produced the returned vector. A
/// healthy query has exactly one attempt; each additional attempt is one
/// hop down the degradation chain (see core/resilient.hpp).
struct QueryReport {
  std::vector<SolveAttempt> attempts;
  SolveOutcome final_outcome = SolveOutcome::kConverged;

  /// Fallback hops taken (0 when the primary configuration succeeded).
  index_t fallback_hops() const {
    return attempts.empty() ? 0 : static_cast<index_t>(attempts.size()) - 1;
  }
  /// Inner iterations summed over every attempt in the chain. Derived on
  /// demand from `attempts` — never accumulated separately — so it cannot
  /// drift from (or double-count) the per-attempt records.
  index_t total_iterations() const;
  /// One line, e.g. "ilu0+gmres -> Breakdown; jacobi+gmres -> Converged".
  std::string Summary() const;
};

/// Per-query measurements.
struct QueryStats {
  double seconds = 0.0;
  /// Inner iterative-solver iterations of the attempt that produced the
  /// result (0 for direct methods).
  index_t iterations = 0;
  /// Inner iterations summed across every degradation-chain attempt;
  /// equals `iterations` when the primary configuration succeeded and is
  /// always >= it. Derived from `report` where one exists.
  index_t total_iterations = 0;
  /// Final relative residual of the inner solver (0 for direct methods).
  real_t residual = 0.0;
  /// Verdict of the solve that produced the result (direct methods and
  /// solvers without structured reporting leave kConverged).
  SolveOutcome outcome = SolveOutcome::kConverged;
  /// Sup-norm bound on the per-score error of the returned vector vs the
  /// true RWR solution, derived from the true Schur residual (see
  /// core/topk.hpp ScoreErrorBound). Only eps-mode queries
  /// (QueryControl::eps > 0 or TopKMode::kEps) fill it; 0 otherwise.
  real_t error_bound = 0.0;
  /// Degradation-chain trace (empty for solvers that do not report one).
  QueryReport report;
};

/// An RWR method: preprocess once, then answer per-seed queries. Seeds and
/// result vectors are in the graph's original node ids.
class RwrSolver {
 public:
  virtual ~RwrSolver() = default;

  virtual std::string name() const = 0;

  /// Builds the preprocessed data for `g`. Must be called before Query.
  virtual Status Preprocess(const Graph& g) = 0;

  /// RWR score vector w.r.t. `seed` (length = number of nodes).
  virtual Result<Vector> Query(index_t seed,
                               QueryStats* stats = nullptr) const = 0;

  /// Personalized PageRank: solves H r = c q for an arbitrary starting
  /// distribution q (length = number of nodes; typically non-negative and
  /// summing to 1). RWR is the special case q = e_seed [33].
  virtual Result<Vector> QueryVector(const Vector& q,
                                     QueryStats* stats = nullptr) const = 0;

  /// Bytes of preprocessed data this solver keeps for the query phase.
  virtual std::uint64_t PreprocessedBytes() const = 0;

  /// Wall-clock seconds spent in the last successful Preprocess call.
  double preprocess_seconds() const { return preprocess_seconds_; }

 protected:
  double preprocess_seconds_ = 0.0;
};

/// H = I - (1-c) * Ã^T for a graph (Equation (2) of the paper).
CsrMatrix BuildH(const Graph& g, real_t restart_prob);

/// H from an already-row-normalized adjacency matrix.
CsrMatrix BuildHFromNormalized(const CsrMatrix& normalized_adjacency,
                               real_t restart_prob);

/// Indicator vector of `seed` scaled by c (the RWR right-hand side).
Vector StartingVector(index_t num_nodes, index_t seed, real_t scale = 1.0);

/// Builds a normalized personalization vector from weighted seed nodes
/// (for Personalized PageRank). Weights must be positive; they are
/// normalized to sum to 1. Duplicate seeds accumulate.
Result<Vector> PersonalizationVector(
    index_t num_nodes,
    const std::vector<std::pair<index_t, real_t>>& weighted_seeds);

/// The k highest-scoring (node, score) pairs, descending by score
/// (ties by node id). Excludes `exclude` when >= 0 (typically the seed).
std::vector<std::pair<index_t, real_t>> TopK(const Vector& scores, index_t k,
                                             index_t exclude = -1);

/// ||H r - c q||_2 for a solved query: the exactness check used in tests.
real_t RwrResidual(const Graph& g, real_t restart_prob, index_t seed,
                   const Vector& r);

}  // namespace bepi

#endif  // BEPI_CORE_RWR_HPP_
