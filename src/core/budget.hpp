// Memory budget gate. The paper's large-graph experiments end with Bear
// and LU decomposition running out of memory; this module reproduces that
// mechanism at laptop scale: preprocessing aborts with ResourceExhausted
// the moment its projected footprint exceeds the budget.
#ifndef BEPI_CORE_BUDGET_HPP_
#define BEPI_CORE_BUDGET_HPP_

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace bepi {

class MemoryBudget {
 public:
  /// budget_bytes == 0 means unlimited.
  explicit MemoryBudget(std::uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  std::uint64_t budget_bytes() const { return budget_bytes_; }
  bool unlimited() const { return budget_bytes_ == 0; }

  /// Ok if `bytes` fits; ResourceExhausted (naming the component) if not.
  Status Check(std::uint64_t bytes, const std::string& what) const;

  /// Registers consumption and checks the running total.
  Status Charge(std::uint64_t bytes, const std::string& what);

  std::uint64_t used_bytes() const { return used_bytes_; }

 private:
  std::uint64_t budget_bytes_;
  std::uint64_t used_bytes_ = 0;
};

}  // namespace bepi

#endif  // BEPI_CORE_BUDGET_HPP_
