#include "core/rwr.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sparse/spgemm.hpp"

namespace bepi {

index_t QueryReport::total_iterations() const {
  index_t total = 0;
  for (const SolveAttempt& a : attempts) total += a.iterations;
  return total;
}

std::string QueryReport::Summary() const {
  if (attempts.empty()) return "no solve attempts recorded";
  std::string out;
  for (const SolveAttempt& a : attempts) {
    if (!out.empty()) out += "; ";
    out += a.stage;
    out += " -> ";
    out += SolveOutcomeName(a.outcome);
    out += " (" + std::to_string(a.iterations) + " iters)";
  }
  return out;
}

CsrMatrix BuildH(const Graph& g, real_t restart_prob) {
  return BuildHFromNormalized(g.RowNormalizedAdjacency(), restart_prob);
}

CsrMatrix BuildHFromNormalized(const CsrMatrix& normalized_adjacency,
                               real_t restart_prob) {
  BEPI_CHECK(restart_prob > 0.0 && restart_prob < 1.0);
  CsrMatrix at = normalized_adjacency.Transpose();
  const CsrMatrix identity = CsrMatrix::Identity(at.rows());
  auto h = Add(1.0, identity, -(1.0 - restart_prob), at);
  BEPI_CHECK(h.ok());
  return std::move(h).value();
}

Vector StartingVector(index_t num_nodes, index_t seed, real_t scale) {
  BEPI_CHECK(seed >= 0 && seed < num_nodes);
  Vector q(static_cast<std::size_t>(num_nodes), 0.0);
  q[static_cast<std::size_t>(seed)] = scale;
  return q;
}

Result<Vector> PersonalizationVector(
    index_t num_nodes,
    const std::vector<std::pair<index_t, real_t>>& weighted_seeds) {
  if (weighted_seeds.empty()) {
    return Status::InvalidArgument("personalization needs at least one seed");
  }
  Vector q(static_cast<std::size_t>(num_nodes), 0.0);
  real_t total = 0.0;
  for (const auto& [node, weight] : weighted_seeds) {
    if (node < 0 || node >= num_nodes) {
      return Status::OutOfRange("personalization seed " + std::to_string(node) +
                                " out of range");
    }
    if (!(weight > 0.0)) {
      return Status::InvalidArgument("personalization weights must be > 0");
    }
    q[static_cast<std::size_t>(node)] += weight;
    total += weight;
  }
  for (real_t& v : q) v /= total;
  return q;
}

std::vector<std::pair<index_t, real_t>> TopK(const Vector& scores, index_t k,
                                             index_t exclude) {
  std::vector<std::pair<index_t, real_t>> items;
  items.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (static_cast<index_t>(i) == exclude) continue;
    items.emplace_back(static_cast<index_t>(i), scores[i]);
  }
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(std::max<index_t>(k, 0)),
                            items.size());
  std::partial_sort(items.begin(), items.begin() + take, items.end(),
                    [](const auto& a, const auto& b) {
                      return a.second != b.second ? a.second > b.second
                                                  : a.first < b.first;
                    });
  items.resize(take);
  return items;
}

real_t RwrResidual(const Graph& g, real_t restart_prob, index_t seed,
                   const Vector& r) {
  const CsrMatrix h = BuildH(g, restart_prob);
  Vector hr = h.Multiply(r);
  Vector q = StartingVector(g.num_nodes(), seed, restart_prob);
  return DistL2(hr, q);
}

}  // namespace bepi
