#include "core/approx.hpp"

#include <cmath>
#include <queue>
#include <utility>

#include "common/rng.hpp"
#include "common/timer.hpp"

namespace bepi {

Status ForwardPushSolver::Preprocess(const Graph& g) {
  Timer timer;
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  if (options_.push_threshold <= 0.0) {
    return Status::InvalidArgument("push threshold must be positive");
  }
  normalized_ = g.RowNormalizedAdjacency();
  preprocess_seconds_ = timer.Seconds();
  return Status::Ok();
}

Result<Vector> ForwardPushSolver::Query(index_t seed,
                                        QueryStats* stats) const {
  const index_t n = normalized_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= n) return Status::OutOfRange("seed out of range");
  return QueryVector(StartingVector(n, seed), stats);
}

namespace {

/// The forward-push core, shared by the solver and the incremental
/// refresh. Invariant maintained by each push:
///   r_exact = p + sum_u res[u] * rwr(u)
/// where rwr(u) is the exact RWR vector seeded at u (||rwr(u)||_1 <= 1).
/// Residual mass may be signed (refresh after edge deletions pushes
/// negative corrections); the loop stops once every |res[u]| <= threshold,
/// leaving an L1 defect of at most threshold * n.
Result<index_t> RunPushLoop(const CsrMatrix& normalized, real_t c,
                            real_t threshold, index_t max_pushes, Vector* p,
                            Vector* res) {
  const index_t n = normalized.rows();
  // Largest-residual-first order: draining the biggest mass before it can
  // scatter keeps each node's residual from re-crossing the threshold
  // many times, which substantially reduces total pushes compared to FIFO
  // rounds (and makes warm-started refreshes genuinely cheap). The heap
  // uses lazy keys: entries are not updated in place; a node is re-pushed
  // when its residual grows while unqueued, and stale magnitudes are
  // re-read at pop time.
  std::priority_queue<std::pair<real_t, index_t>> heap;
  std::vector<bool> queued(static_cast<std::size_t>(n), false);
  for (index_t u = 0; u < n; ++u) {
    const real_t mass = (*res)[static_cast<std::size_t>(u)];
    if (std::fabs(mass) > threshold) {
      heap.emplace(std::fabs(mass), u);
      queued[static_cast<std::size_t>(u)] = true;
    }
  }
  index_t pushes = 0;
  while (!heap.empty()) {
    const index_t u = heap.top().second;
    heap.pop();
    queued[static_cast<std::size_t>(u)] = false;
    const real_t mass = (*res)[static_cast<std::size_t>(u)];
    if (std::fabs(mass) <= threshold) continue;
    if (++pushes > max_pushes) {
      return Status::NotConverged("forward push exceeded its push budget");
    }
    (*res)[static_cast<std::size_t>(u)] = 0.0;
    (*p)[static_cast<std::size_t>(u)] += c * mass;
    // Distribute (1-c)*mass over out-neighbors; at a deadend the walk
    // mass is lost, matching H's treatment of zero rows.
    const real_t spread = (1.0 - c) * mass;
    for (index_t pos = normalized.row_ptr()[static_cast<std::size_t>(u)];
         pos < normalized.row_ptr()[static_cast<std::size_t>(u) + 1]; ++pos) {
      const index_t v = normalized.col_idx()[static_cast<std::size_t>(pos)];
      const real_t updated =
          ((*res)[static_cast<std::size_t>(v)] +=
           spread * normalized.values()[static_cast<std::size_t>(pos)]);
      if (std::fabs(updated) > threshold && !queued[static_cast<std::size_t>(v)]) {
        heap.emplace(std::fabs(updated), v);
        queued[static_cast<std::size_t>(v)] = true;
      }
    }
  }
  return pushes;
}

}  // namespace

Result<Vector> ForwardPushSolver::QueryVector(const Vector& q,
                                              QueryStats* stats) const {
  const index_t n = normalized_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  Timer timer;
  Vector p(static_cast<std::size_t>(n), 0.0);
  Vector res = q;
  BEPI_ASSIGN_OR_RETURN(
      index_t pushes,
      RunPushLoop(normalized_, options_.restart_prob, options_.push_threshold,
                  options_.max_pushes, &p, &res));
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
    stats->iterations = pushes;
    stats->total_iterations = pushes;
  }
  return p;
}

Result<Vector> RefreshRwrScores(const Graph& new_graph, index_t seed,
                                const Vector& stale_scores,
                                const ForwardPushOptions& options,
                                QueryStats* stats) {
  const index_t n = new_graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (static_cast<index_t>(stale_scores.size()) != n) {
    return Status::InvalidArgument(
        "stale score vector length mismatch (node additions need a resized "
        "vector padded with zeros)");
  }
  if (seed < 0 || seed >= n) return Status::OutOfRange("seed out of range");
  if (options.push_threshold <= 0.0) {
    return Status::InvalidArgument("push threshold must be positive");
  }
  Timer timer;
  const real_t c = options.restart_prob;
  const CsrMatrix normalized = new_graph.RowNormalizedAdjacency();

  // Defect of the stale estimate against the NEW system, in push units:
  // r_new = p + sum_u res[u] * rwr_new(u) with p = stale_scores and
  // res = (c q - H_new p) / c = q - (p - (1-c) Ã_new^T p) / c.
  Vector p = stale_scores;
  Vector res = normalized.MultiplyTranspose(p);
  for (index_t u = 0; u < n; ++u) {
    res[static_cast<std::size_t>(u)] =
        ((1.0 - c) * res[static_cast<std::size_t>(u)] -
         p[static_cast<std::size_t>(u)]) /
        c;
  }
  res[static_cast<std::size_t>(seed)] += 1.0;

  BEPI_ASSIGN_OR_RETURN(
      index_t pushes,
      RunPushLoop(normalized, c, options.push_threshold, options.max_pushes,
                  &p, &res));
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
    stats->iterations = pushes;
    stats->total_iterations = pushes;
  }
  return p;
}

Status MonteCarloSolver::Preprocess(const Graph& g) {
  Timer timer;
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  if (options_.num_walks <= 0) {
    return Status::InvalidArgument("num_walks must be positive");
  }
  adjacency_ = g.adjacency();
  preprocess_seconds_ = timer.Seconds();
  return Status::Ok();
}

Result<Vector> MonteCarloSolver::Query(index_t seed, QueryStats* stats) const {
  const index_t n = adjacency_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (seed < 0 || seed >= n) return Status::OutOfRange("seed out of range");
  Timer timer;
  const real_t c = options_.restart_prob;
  Rng rng(options_.seed ^ static_cast<std::uint64_t>(seed) * 0x9e3779b9ULL);

  // Each walk ends at its current node with probability c per step; the
  // endpoint distribution is exactly r. Walks hitting a deadend die
  // without an endpoint, matching the mass leak of the H formulation.
  std::vector<index_t> endpoint_counts(static_cast<std::size_t>(n), 0);
  index_t total_steps = 0;
  for (index_t walk = 0; walk < options_.num_walks; ++walk) {
    index_t u = seed;
    for (;;) {
      ++total_steps;
      if (rng.NextDouble() < c) {
        endpoint_counts[static_cast<std::size_t>(u)]++;
        break;
      }
      const index_t begin = adjacency_.row_ptr()[static_cast<std::size_t>(u)];
      const index_t end = adjacency_.row_ptr()[static_cast<std::size_t>(u) + 1];
      if (begin == end) break;  // deadend: the walk dies
      const index_t pick = begin + rng.UniformIndex(0, end - begin - 1);
      u = adjacency_.col_idx()[static_cast<std::size_t>(pick)];
    }
  }
  Vector r(static_cast<std::size_t>(n), 0.0);
  const real_t inv = 1.0 / static_cast<real_t>(options_.num_walks);
  for (index_t u = 0; u < n; ++u) {
    r[static_cast<std::size_t>(u)] =
        static_cast<real_t>(endpoint_counts[static_cast<std::size_t>(u)]) * inv;
  }
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
    stats->iterations = total_steps;
    stats->total_iterations = total_steps;
  }
  return r;
}

Result<Vector> MonteCarloSolver::QueryVector(const Vector& q,
                                             QueryStats* stats) const {
  const index_t n = adjacency_.rows();
  if (n == 0) return Status::FailedPrecondition("Preprocess not called");
  if (static_cast<index_t>(q.size()) != n) {
    return Status::InvalidArgument("personalization vector length mismatch");
  }
  // Sample start nodes from q (must be a distribution), then reuse the
  // single-seed machinery via linearity: group walks by sampled start.
  real_t total = 0.0;
  for (real_t v : q) {
    if (v < 0.0) {
      return Status::InvalidArgument("personalization entries must be >= 0");
    }
    total += v;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("personalization vector must be non-zero");
  }
  Timer timer;
  Rng rng(options_.seed * 0x2545f4914f6cdd1dULL + 17);
  // Multinomial assignment of walks to start nodes.
  std::vector<index_t> walks_per_node(static_cast<std::size_t>(n), 0);
  for (index_t w = 0; w < options_.num_walks; ++w) {
    real_t target = rng.NextDouble() * total;
    index_t chosen = n - 1;
    for (index_t u = 0; u < n; ++u) {
      target -= q[static_cast<std::size_t>(u)];
      if (target <= 0.0) {
        chosen = u;
        break;
      }
    }
    walks_per_node[static_cast<std::size_t>(chosen)]++;
  }
  Vector r(static_cast<std::size_t>(n), 0.0);
  index_t total_steps = 0;
  const real_t c = options_.restart_prob;
  for (index_t s = 0; s < n; ++s) {
    for (index_t w = 0; w < walks_per_node[static_cast<std::size_t>(s)]; ++w) {
      index_t u = s;
      for (;;) {
        ++total_steps;
        if (rng.NextDouble() < c) {
          r[static_cast<std::size_t>(u)] += 1.0;
          break;
        }
        const index_t begin = adjacency_.row_ptr()[static_cast<std::size_t>(u)];
        const index_t end = adjacency_.row_ptr()[static_cast<std::size_t>(u) + 1];
        if (begin == end) break;
        const index_t pick = begin + rng.UniformIndex(0, end - begin - 1);
        u = adjacency_.col_idx()[static_cast<std::size_t>(pick)];
      }
    }
  }
  Scale(1.0 / static_cast<real_t>(options_.num_walks), &r);
  if (stats != nullptr) {
    *stats = QueryStats();
    stats->seconds = timer.Seconds();
    stats->iterations = total_steps;
    stats->total_iterations = total_steps;
  }
  return r;
}

}  // namespace bepi
