#include "core/resilient.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/flightrec.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "solver/bicgstab.hpp"
#include "solver/gmres.hpp"
#include "solver/power.hpp"

namespace bepi {
namespace {

SolveAttempt MakeAttempt(const char* stage, const SolveStats& stats,
                         double seconds) {
  SolveAttempt attempt;
  attempt.stage = stage;
  attempt.outcome = stats.outcome;
  attempt.iterations = stats.iterations;
  attempt.residual = stats.relative_residual;
  attempt.seconds = seconds;
  return attempt;
}

void Record(QueryReport* report, const SolveAttempt& attempt,
            const char* request_id) {
  if (MetricsEnabled()) {
    // Dynamic name lookup is fine here: one registry probe per solver
    // attempt, orders of magnitude colder than the inner iterations.
    MetricsRegistry::Global()
        .GetCounter("solver.attempts." + attempt.stage)
        ->Increment();
  }
  FlightRecord(FlightEventType::kStageHop, request_id, attempt.stage.c_str(),
               static_cast<std::int64_t>(attempt.seconds * 1e9));
  if (report == nullptr) return;
  report->attempts.push_back(attempt);
  report->final_outcome = attempt.outcome;
}

/// Closes a per-hop trace span with the attempt's verdict attached.
void FinishHopSpan(TraceSpan* span, const SolveAttempt& attempt,
                   const char* request_id) {
  if (!span->active()) return;
  span->Arg("stage", attempt.stage);
  span->Arg("outcome", SolveOutcomeName(attempt.outcome));
  span->Arg("iterations", attempt.iterations);
  span->Arg("residual", attempt.residual);
  if (request_id != nullptr) span->Arg("request_id", std::string(request_id));
}

}  // namespace

ResilientSchurSolver::ResilientSchurSolver(const CsrMatrix& schur,
                                           const Ilu0* ilu,
                                           ResilientSolveOptions options,
                                           const LinearOperator* op)
    : schur_(schur), ilu_(ilu), options_(options), op_(op) {}

Result<Vector> ResilientSchurSolver::Solve(const Vector& b,
                                           QueryReport* report) const {
  if (static_cast<index_t>(b.size()) != schur_.rows()) {
    return Status::InvalidArgument("Schur rhs size mismatch");
  }
  CsrOperator fallback_op(schur_);
  const LinearOperator& op = op_ != nullptr ? *op_ : fallback_op;
  GmresOptions gm;
  gm.tol = options_.tol;
  gm.max_iters = options_.max_iters;
  gm.restart = options_.gmres_restart;
  gm.cancel = options_.cancel;

  // Hop 1: the paper's configuration, when the ILU(0) factors exist.
  if (ilu_ != nullptr) {
    TraceSpan hop_span("schur.hop");
    Timer hop_timer;
    SolveStats stats;
    BEPI_ASSIGN_OR_RETURN(Vector x, Gmres(op, b, gm, &stats, ilu_,
                                          options_.x0,
                                          options_.gmres_workspace));
    const SolveAttempt attempt =
        MakeAttempt("ilu0+gmres", stats, hop_timer.Seconds());
    FinishHopSpan(&hop_span, attempt, options_.request_id);
    Record(report, attempt, options_.request_id);
    if (stats.converged) return x;
    // A cancelled hop ends the chain: degrading further would only burn
    // more time past the deadline. Hand back the best iterate; the
    // recorded attempt carries its residual.
    if (stats.outcome == SolveOutcome::kCancelled) return x;
    if (!options_.enable_fallbacks) {
      return Status::NotConverged("Schur solve (ilu0+gmres) ended with " +
                                  std::string(SolveOutcomeName(stats.outcome)) +
                                  " and fallbacks are disabled");
    }
  }

  // Hop 2: Jacobi-preconditioned GMRES. The Schur complement of an RWR
  // system is a nonsingular M-matrix, so its diagonal is safe to invert;
  // this hop survives any ILU(0) breakdown or ILU-induced NaN.
  {
    TraceSpan hop_span("schur.hop");
    Timer hop_timer;
    SolveStats stats;
    JacobiPreconditioner jacobi(schur_);
    BEPI_ASSIGN_OR_RETURN(Vector x, Gmres(op, b, gm, &stats, &jacobi,
                                          options_.x0,
                                          options_.gmres_workspace));
    const SolveAttempt attempt =
        MakeAttempt("jacobi+gmres", stats, hop_timer.Seconds());
    FinishHopSpan(&hop_span, attempt, options_.request_id);
    Record(report, attempt, options_.request_id);
    if (stats.converged) return x;
    if (stats.outcome == SolveOutcome::kCancelled) return x;
    if (!options_.enable_fallbacks && ilu_ == nullptr) {
      return Status::NotConverged("Schur solve (jacobi+gmres) ended with " +
                                  std::string(SolveOutcomeName(stats.outcome)) +
                                  " and fallbacks are disabled");
    }
  }

  // Hop 3: unpreconditioned BiCGSTAB — a different Krylov recurrence that
  // does not share GMRES's restart-stagnation failure mode.
  {
    TraceSpan hop_span("schur.hop");
    Timer hop_timer;
    SolveStats stats;
    BicgstabOptions bi;
    bi.tol = options_.tol;
    bi.max_iters = options_.max_iters;
    bi.cancel = options_.cancel;
    BEPI_ASSIGN_OR_RETURN(Vector x, Bicgstab(op, b, bi, &stats));
    const SolveAttempt attempt =
        MakeAttempt("bicgstab", stats, hop_timer.Seconds());
    FinishHopSpan(&hop_span, attempt, options_.request_id);
    Record(report, attempt, options_.request_id);
    if (stats.converged) return x;
    if (stats.outcome == SolveOutcome::kCancelled) return x;
  }

  return Status::NotConverged(
      "all Krylov stages of the Schur degradation chain failed");
}

bool SupportsGlobalPowerFallback(const HubSpokeDecomposition& dec) {
  return dec.h11.rows() == dec.n1 && dec.h11.cols() == dec.n1 &&
         dec.h22.rows() == dec.n2 && dec.h22.cols() == dec.n2;
}

namespace {

/// y = (I - H) x assembled blockwise from the stored partitions of the
/// reordered H (Equation (5); H13 = H23 = 0 and H33 = I, so the deadend
/// rows of I - H are exactly -[H31 H32 0]).
class BlockComplementOperator final : public LinearOperator {
 public:
  explicit BlockComplementOperator(const HubSpokeDecomposition& dec)
      : dec_(dec) {}

  index_t size() const override { return dec_.n; }

  void Apply(const Vector& x, Vector* y) const override {
    const std::size_t n1 = static_cast<std::size_t>(dec_.n1);
    const std::size_t n2 = static_cast<std::size_t>(dec_.n2);
    const std::size_t n3 = static_cast<std::size_t>(dec_.n3);
    const Vector x1(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(n1));
    const Vector x2(x.begin() + static_cast<std::ptrdiff_t>(n1),
                    x.begin() + static_cast<std::ptrdiff_t>(n1 + n2));
    y->assign(x.size(), 0.0);
    // y1 = x1 - H11 x1 - H12 x2
    if (n1 > 0) {
      Vector y1 = x1;
      dec_.h11.MultiplyAdd(-1.0, x1, &y1);
      if (n2 > 0) dec_.h12.MultiplyAdd(-1.0, x2, &y1);
      std::copy(y1.begin(), y1.end(), y->begin());
    }
    // y2 = x2 - H21 x1 - H22 x2
    if (n2 > 0) {
      Vector y2 = x2;
      if (n1 > 0) dec_.h21.MultiplyAdd(-1.0, x1, &y2);
      dec_.h22.MultiplyAdd(-1.0, x2, &y2);
      std::copy(y2.begin(), y2.end(),
                y->begin() + static_cast<std::ptrdiff_t>(n1));
    }
    // y3 = -(H31 x1 + H32 x2)
    if (n3 > 0) {
      Vector y3(n3, 0.0);
      if (n1 > 0) dec_.h31.MultiplyAdd(-1.0, x1, &y3);
      if (n2 > 0) dec_.h32.MultiplyAdd(-1.0, x2, &y3);
      std::copy(y3.begin(), y3.end(),
                y->begin() + static_cast<std::ptrdiff_t>(n1 + n2));
    }
  }

 private:
  const HubSpokeDecomposition& dec_;
};

}  // namespace

Result<Vector> GlobalPowerFallback(const HubSpokeDecomposition& dec,
                                   const Vector& cq,
                                   const ResilientSolveOptions& options,
                                   QueryReport* report) {
  if (static_cast<index_t>(cq.size()) != dec.n) {
    return Status::InvalidArgument("power fallback rhs size mismatch");
  }
  if (!SupportsGlobalPowerFallback(dec)) {
    return Status::FailedPrecondition(
        "decomposition lacks H11/H22 (model predates format v2); global "
        "power fallback unavailable");
  }
  TraceSpan fallback_span("query.power_fallback");
  Timer hop_timer;
  BlockComplementOperator g_op(dec);
  FixedPointOptions fp;
  fp.tol = options.tol;
  fp.max_iters = options.max_iters;
  fp.cancel = options.cancel;
  SolveStats stats;
  BEPI_ASSIGN_OR_RETURN(Vector r, FixedPointIteration(g_op, cq, fp, &stats));
  const SolveAttempt attempt = MakeAttempt("power", stats, hop_timer.Seconds());
  FinishHopSpan(&fallback_span, attempt, options.request_id);
  Record(report, attempt, options.request_id);
  // Mirror the Krylov chain's cancellation contract: ok Result, partial
  // iterate, report->final_outcome == kCancelled.
  if (stats.outcome == SolveOutcome::kCancelled) return r;
  if (!stats.converged) {
    return Status::NotConverged(
        "global power-iteration fallback exhausted its budget at residual " +
        std::to_string(stats.relative_residual));
  }
  return r;
}

}  // namespace bepi
