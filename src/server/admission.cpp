#include "server/admission.hpp"

#include <algorithm>
#include <chrono>

#include "common/metrics.hpp"

namespace bepi {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  if (options_.max_queue == 0) options_.max_queue = 1;
  if (options_.slots < 1) options_.slots = 1;
}

Status AdmissionController::Submit(AdmissionJob job, double* retry_after_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      return Status::FailedPrecondition("server is draining");
    }
    if (queue_.size() >= options_.max_queue) {
      if (retry_after_ms != nullptr) *retry_after_ms = EstimateRetryAfterMsLocked();
      BEPI_METRIC_COUNTER(rejected, "server.rejected_overload");
      rejected->Increment();
      return Status::ResourceExhausted(
          "queue full (" + std::to_string(options_.max_queue) + " waiting)");
    }
    queue_.push_back(std::move(job));
    BEPI_METRIC_GAUGE(depth, "server.queue_depth");
    depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return Status::Ok();
}

bool AdmissionController::NextBatch(std::vector<AdmissionJob>* jobs,
                                    std::size_t max_batch, double window_ms) {
  jobs->clear();
  if (max_batch < 1) max_batch = 1;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // draining and dry
  const auto take = [&] {
    while (!queue_.empty() && jobs->size() < max_batch) {
      jobs->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  };
  take();
  if (jobs->size() < max_batch && window_ms > 0.0 && !draining_) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(window_ms));
    while (jobs->size() < max_batch) {
      const bool signalled = cv_.wait_until(lock, deadline, [this] {
        return draining_ || !queue_.empty();
      });
      if (!signalled) break;  // window expired
      take();
      if (draining_) break;
    }
  }
  BEPI_METRIC_GAUGE(depth, "server.queue_depth");
  depth->Set(static_cast<double>(queue_.size()));
  return true;
}

bool AdmissionController::Next(AdmissionJob* job) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // draining and dry
  *job = std::move(queue_.front());
  queue_.pop_front();
  BEPI_METRIC_GAUGE(depth, "server.queue_depth");
  depth->Set(static_cast<double>(queue_.size()));
  return true;
}

void AdmissionController::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::size_t AdmissionController::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void AdmissionController::RecordServiceSeconds(double seconds) {
  if (!(seconds >= 0.0)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_service_sample_) {
    ewma_service_seconds_ = seconds;
    have_service_sample_ = true;
  } else {
    constexpr double kAlpha = 0.2;
    ewma_service_seconds_ =
        kAlpha * seconds + (1.0 - kAlpha) * ewma_service_seconds_;
  }
}

double AdmissionController::EstimateRetryAfterMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EstimateRetryAfterMsLocked();
}

double AdmissionController::EstimateRetryAfterMsLocked() const {
  const double service_ms =
      have_service_sample_ ? ewma_service_seconds_ * 1e3 : 50.0;
  const double backlog =
      static_cast<double>(queue_.size() + 1) /
      static_cast<double>(options_.slots);
  return std::clamp(service_ms * backlog, 1.0, 60000.0);
}

}  // namespace bepi
