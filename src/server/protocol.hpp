// The serve-mode wire protocol: one JSON object per '\n'-terminated line,
// both directions, over stdin/stdout or a Unix-domain socket.
//
// Requests:
//   {"op":"query","seed":3}                                  minimal
//   {"op":"query","id":"a1","request_id":"r-7","seed":3,"topk":5,
//    "deadline_ms":50,"allow_partial":true,"scores":true}    everything
//   {"op":"query","seed":3,"top_k":10}                       pruned top-k
//   {"op":"query","seed":3,"top_k":10,"mode":"eps",
//    "eps":1e-6}                                             bounded-error
//   {"op":"health"}   {"op":"stats"}                         probes
//   {"op":"metrics"}  {"op":"dump"}                          observability
//
// "topk" (render count) truncates the ranking attached to a full solve;
// "top_k" (query mode) routes the request through the pruned
// back-substitution top-k engine instead — the response's "topk" array
// then holds exactly k sorted [node,score] pairs, plus "mode" and (for
// mode "eps") a per-score error "bound". "top_k" is incompatible with
// "scores":true (the pruned path never materializes the full vector) and
// with "topk". "mode":"eps" requires "eps" (finite, > 0) and vice versa.
//
// "request_id" is the trace context: client-supplied (or minted by the
// server when absent), echoed in the response, threaded through
// QueryControl into solver trace spans, flight-recorder events and the
// slow-query log. "metrics" returns the registry as Prometheus text
// exposition; "dump" returns the flight-recorder rings as
// Perfetto-loadable JSON.
//
// Responses echo "id" when the request carried one and always have an
// "ok" boolean; failures add "error" (a stable snake_case code) and a
// human "message". The parser is deliberately unforgiving — every line is
// either a fully valid request or a one-line error response; nothing a
// client sends can kill the process. Defenses, in order:
//   * length cap before any parsing (transport-enforced, bounded memory
//     even for a line that never ends),
//   * strict RFC 8259 syntax (same rigor as the test-util validator:
//     raw control characters, bad escapes, trailing garbage all rejected),
//   * schema checks: unknown op, unknown keys, wrong types, out-of-range
//     numbers each produce a named error.
// Fault-injection sites cover every I/O edge: server.parse_garbage
// replaces an inbound line with garbage, server.short_read truncates a
// read mid-line, server.slow_client forces the write path down its
// client-never-drains timeout.
#ifndef BEPI_SERVER_PROTOCOL_HPP_
#define BEPI_SERVER_PROTOCOL_HPP_

#include <cstddef>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace bepi {

// --- JSON --------------------------------------------------------------

/// Parsed JSON value (strict, depth-capped). Numbers remember whether the
/// literal was integral so "seed":1.5 can be rejected as a bad id while
/// "deadline_ms":1.5 stays legal.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  bool number_is_integral = false;
  std::string string_value;                        // decoded (escapes resolved)
  std::map<std::string, JsonValue> object_value;   // key order irrelevant
  std::vector<JsonValue> array_value;
};

/// Strict parse of exactly one JSON value spanning the whole input.
/// `max_depth` caps object/array nesting (stack-exhaustion hardening).
Result<JsonValue> ParseJson(const std::string& text, int max_depth = 16);

/// Serializes `s` as a JSON string literal, quotes included.
std::string JsonQuote(const std::string& s);

// --- Requests ----------------------------------------------------------

enum class RequestOp { kQuery, kHealth, kStats, kMetrics, kDump };

/// A validated request. For kHealth/kStats/kMetrics/kDump only `op`,
/// `id_json` and `request_id` are meaningful.
struct Request {
  RequestOp op = RequestOp::kQuery;
  /// The request's "id" re-serialized (string or integer), empty when
  /// absent; responses echo it verbatim.
  std::string id_json;
  /// Trace context: [A-Za-z0-9._:-]{1,64}, empty when the client sent
  /// none (the server then mints one). Echoed in the response.
  std::string request_id;
  index_t seed = 0;
  index_t topk = 10;
  /// Top-k query mode ("top_k" key): 0 = dense solve (default); >= 1
  /// routes through the pruned top-k engine. The parser enforces
  /// [1, 1e9]; the server additionally rejects top_k > n.
  index_t top_k = 0;
  /// "mode":"eps" — stop the Schur solve at `eps` and report a per-score
  /// error bound. Only meaningful when top_k > 0.
  bool mode_eps = false;
  double eps = 0.0;
  double deadline_ms = 0.0;  // 0 = no per-request deadline
  bool allow_partial = false;
  bool want_scores = false;
};

// Stable error codes carried in the "error" field of failure responses.
namespace protocol_errors {
inline constexpr char kParse[] = "parse_error";
inline constexpr char kInvalidArgument[] = "invalid_argument";
inline constexpr char kOverloaded[] = "overloaded";
inline constexpr char kDeadlineExceeded[] = "deadline_exceeded";
inline constexpr char kCancelled[] = "cancelled";
inline constexpr char kDraining[] = "draining";
inline constexpr char kInternal[] = "internal";
}  // namespace protocol_errors

/// Parses and validates one request line. On failure the Status message
/// is safe to embed in an error response; a parse-level failure maps to
/// kDataLoss (report "parse_error") and a schema-level one to
/// kInvalidArgument. The server.parse_garbage fault site fires here.
Result<Request> ParseRequest(const std::string& line);

/// One-line error response. `retry_after_ms` >= 0 adds the backpressure
/// hint (overloaded responses). A non-empty `request_id` is echoed so a
/// failed request stays traceable. `id_json` may be empty.
std::string ErrorResponseLine(const std::string& id_json,
                              const std::string& error,
                              const std::string& message,
                              double retry_after_ms = -1.0,
                              const std::string& request_id = "");

// --- Transports --------------------------------------------------------

/// A bidirectional line pipe. ReadLine strips the trailing '\n' and
/// returns false on clean EOF; an oversized line is discarded in bounded
/// memory and reported as kOutOfRange (the connection stays usable).
/// WriteLine appends '\n'. Implementations are not thread-safe; the
/// server serializes writers per transport.
class LineTransport {
 public:
  virtual ~LineTransport() = default;
  virtual Result<bool> ReadLine(std::string* line) = 0;
  virtual Status WriteLine(const std::string& line) = 0;
};

/// iostream-backed transport: the stdin/stdout serve mode and unit tests.
class StreamTransport final : public LineTransport {
 public:
  StreamTransport(std::istream& in, std::ostream& out,
                  std::size_t max_line_bytes);
  Result<bool> ReadLine(std::string* line) override;
  Status WriteLine(const std::string& line) override;

 private:
  std::istream& in_;
  std::ostream& out_;
  std::size_t max_line_bytes_;
};

/// File-descriptor transport for Unix-domain socket connections.
/// Non-blocking under the hood: reads poll the fd together with an
/// optional wake fd (the shutdown self-pipe) and surface kCancelled when
/// the wake fd fires; writes poll for writability and give up with
/// kIoError after `write_timeout_ms` (a client that never drains cannot
/// wedge a worker — the server drops the connection instead). Owns `fd`.
class FdTransport final : public LineTransport {
 public:
  FdTransport(int fd, std::size_t max_line_bytes, double write_timeout_ms,
              int wake_fd = -1);
  ~FdTransport() override;
  Result<bool> ReadLine(std::string* line) override;
  Status WriteLine(const std::string& line) override;
  void Close();

 private:
  int fd_;
  std::size_t max_line_bytes_;
  double write_timeout_ms_;
  int wake_fd_;
  std::string buffer_;  // bytes read but not yet returned
};

}  // namespace bepi

#endif  // BEPI_SERVER_PROTOCOL_HPP_
