// Hot-seed score cache for the serve path: an LRU of fully-solved RWR
// score vectors keyed by (model fingerprint, seed) under a byte budget.
//
// An RWR query is a pure function of (model, seed, c, eps) — the same
// identity the batch engine's within-batch dedupe rests on — so a cached
// vector answers a repeat query byte-for-byte identically to re-solving
// it, including the %.17g-rendered topk/scores/residual fields of the
// serve response. Two entry grades share one LRU chain:
//
//   * full:    the complete score vector plus a precomputed top-K prefix.
//     Serves any request (arbitrary topk, want_scores).
//   * compact: the top-K prefix only (K = kCompactTopK). When the budget
//     forces a full entry out, it is demoted to compact and re-inserted
//     at the MRU end — a hot seed keeps answering topk<=K requests for a
//     ~1000x smaller footprint — and only a compact entry reached again
//     by the LRU scan is dropped outright.
//
// TopK (core/rwr.hpp) orders by (score desc, node asc) — a strict total
// order — so the stored top-K list serves any smaller topk as an exact
// prefix of what TopK would return on the full vector.
//
// Thread-safe: one mutex, reads copy out under it. Only *converged* full
// solves may be inserted (partial or degraded-stochastic results must
// not be replayed to later requests). Insert/Lookup maintain the
// server.cache.{hits,misses,evictions,bytes} metrics; a zero budget
// disables the cache entirely (no lookups counted, nothing stored).
#ifndef BEPI_SERVER_CACHE_HPP_
#define BEPI_SERVER_CACHE_HPP_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sparse/dense.hpp"

namespace bepi {

class BepiSolver;

/// Structural + numeric identity of a loaded model: node/block counts,
/// Schur nnz, restart probability and tolerance bits. Two models with the
/// same fingerprint answer every seed identically (for cache purposes);
/// a reloaded or re-preprocessed model fingerprints differently and its
/// lookups miss without any explicit flush.
std::uint64_t ModelFingerprint(const BepiSolver& solver);

/// What a cache hit hands the response assembler: the request's exact
/// topk ranking, the full vector when the request wants raw scores, and
/// the original solve's iteration count and residual (replayed verbatim
/// so those response fields stay bit-identical to the cold solve).
struct ScoreCacheHit {
  std::vector<std::pair<index_t, real_t>> topk;
  Vector scores;  // filled only when want_scores was requested
  index_t iterations = 0;
  real_t residual = 0.0;
};

class ScoreCache {
 public:
  /// Compact entries keep this many (node, score) pairs.
  static constexpr index_t kCompactTopK = 100;

  /// `max_bytes` 0 disables the cache (every Lookup returns false
  /// uncounted, Insert is a no-op). Metrics are registered either way so
  /// the exposition's key set stays deterministic.
  explicit ScoreCache(std::uint64_t max_bytes);

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// Answers (fingerprint, seed) if cached and the entry can serve the
  /// request: a full entry serves anything; a compact entry serves
  /// topk <= kCompactTopK without want_scores. Counts one hit or miss.
  bool Lookup(std::uint64_t fingerprint, index_t seed, index_t topk,
              bool want_scores, ScoreCacheHit* hit);

  /// Caches a converged solve's full vector (the top-K prefix is computed
  /// here, excluding `seed` like the serve response does) and shrinks to
  /// the byte budget. Re-inserting an existing key refreshes it.
  void Insert(std::uint64_t fingerprint, index_t seed, const Vector& scores,
              index_t iterations, real_t residual);

  /// Drops everything (model reload / fingerprint rotation). Dropped
  /// entries count as evictions.
  void Invalidate();

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::uint64_t bytes() const;
  std::uint64_t max_bytes() const { return max_bytes_; }
  bool enabled() const { return max_bytes_ > 0; }

 private:
  struct Key {
    std::uint64_t fingerprint;
    index_t seed;
    bool operator==(const Key& o) const {
      return fingerprint == o.fingerprint && seed == o.seed;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // Splitmix-style finalizer over the two halves.
      std::uint64_t h = k.fingerprint ^
                        (static_cast<std::uint64_t>(k.seed) * 0x9e3779b97f4a7c15ULL);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    Key key;
    Vector scores;  // empty once demoted to compact
    std::vector<std::pair<index_t, real_t>> topk;
    index_t iterations = 0;
    real_t residual = 0.0;
  };

  static std::uint64_t EntryBytes(const Entry& e);
  void ShrinkLocked();   // mu_ held
  void PublishLocked();  // mu_ held: push bytes_ to the gauge

  const std::uint64_t max_bytes_;
  mutable std::mutex mu_;
  /// MRU at front. The map's values point at list nodes (stable under
  /// splice).
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace bepi

#endif  // BEPI_SERVER_CACHE_HPP_
