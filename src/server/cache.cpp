#include "server/cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/metrics.hpp"
#include "core/bepi.hpp"
#include "core/rwr.hpp"

namespace bepi {

namespace {

std::uint64_t Fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

}  // namespace

std::uint64_t ModelFingerprint(const BepiSolver& solver) {
  const HubSpokeDecomposition& dec = solver.decomposition();
  const BepiOptions& opt = solver.options();
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = Fnv1a(h, static_cast<std::uint64_t>(dec.n));
  h = Fnv1a(h, static_cast<std::uint64_t>(dec.n1));
  h = Fnv1a(h, static_cast<std::uint64_t>(dec.n2));
  h = Fnv1a(h, static_cast<std::uint64_t>(dec.n3));
  h = Fnv1a(h, static_cast<std::uint64_t>(dec.schur.nnz()));
  h = Fnv1a(h, static_cast<std::uint64_t>(dec.h11.nnz()));
  h = Fnv1a(h, DoubleBits(static_cast<double>(opt.restart_prob)));
  h = Fnv1a(h, DoubleBits(static_cast<double>(opt.tolerance)));
  h = Fnv1a(h, static_cast<std::uint64_t>(opt.max_iterations));
  h = Fnv1a(h, static_cast<std::uint64_t>(opt.gmres_restart));
  h = Fnv1a(h, static_cast<std::uint64_t>(opt.mode));
  h = Fnv1a(h, static_cast<std::uint64_t>(opt.inner_solver));
  return h;
}

ScoreCache::ScoreCache(std::uint64_t max_bytes) : max_bytes_(max_bytes) {
  // Register up front so the exposition's key set is deterministic (the
  // docs glossary cross-check diffs it), not dependent on traffic.
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const char* name : {"server.cache.hits", "server.cache.misses",
                           "server.cache.evictions"}) {
    registry.GetCounter(name);
  }
  registry.GetGauge("server.cache.bytes");
}

std::uint64_t ScoreCache::EntryBytes(const Entry& e) {
  // Heap payloads plus a flat allowance for the list node, key and index
  // slot; close enough that --cache-mb means what it says.
  constexpr std::uint64_t kOverhead = 128;
  return kOverhead +
         static_cast<std::uint64_t>(e.scores.capacity()) * sizeof(real_t) +
         static_cast<std::uint64_t>(e.topk.capacity()) *
             sizeof(std::pair<index_t, real_t>);
}

void ScoreCache::PublishLocked() {
  BEPI_METRIC_GAUGE(bytes_gauge, "server.cache.bytes");
  bytes_gauge->Set(static_cast<double>(bytes_));
}

bool ScoreCache::Lookup(std::uint64_t fingerprint, index_t seed, index_t topk,
                        bool want_scores, ScoreCacheHit* hit) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(Key{fingerprint, seed});
  const bool compact_ok =
      !want_scores && topk <= static_cast<index_t>(kCompactTopK);
  if (it == index_.end() ||
      (it->second->scores.empty() &&
       (!compact_ok ||
        // A compact entry may legitimately hold fewer than K pairs (tiny
        // graph); it still serves any topk its list covers. TopK also
        // never returns more than n-1 pairs, so a stored short list is
        // the *complete* ranking and serves every topk >= its length —
        // but telling that apart from a truncated one needs n, which the
        // cache does not track: be conservative and only serve prefixes.
        topk > static_cast<index_t>(it->second->topk.size())))) {
    ++misses_;
    BEPI_METRIC_COUNTER(miss_counter, "server.cache.misses");
    miss_counter->Increment();
    return false;
  }
  Entry& e = *it->second;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU
  const index_t want = std::max<index_t>(topk, 0);
  if (want <= static_cast<index_t>(e.topk.size())) {
    hit->topk.assign(e.topk.begin(),
                     e.topk.begin() + static_cast<std::size_t>(want));
  } else {
    hit->topk = TopK(e.scores, want, seed);
  }
  hit->scores = want_scores ? e.scores : Vector();
  hit->iterations = e.iterations;
  hit->residual = e.residual;
  ++hits_;
  BEPI_METRIC_COUNTER(hit_counter, "server.cache.hits");
  hit_counter->Increment();
  return true;
}

void ScoreCache::Insert(std::uint64_t fingerprint, index_t seed,
                        const Vector& scores, index_t iterations,
                        real_t residual) {
  if (!enabled()) return;
  // TopK reserves ~n slots before its partial sort; shed the slack so a
  // compact entry really costs O(K), not O(n) (EntryBytes counts
  // capacity — what the allocator actually holds).
  std::vector<std::pair<index_t, real_t>> top = TopK(scores, kCompactTopK, seed);
  top.shrink_to_fit();
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{fingerprint, seed};
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh (e.g. a demoted compact entry re-solved in full).
    bytes_ -= EntryBytes(*it->second);
    it->second->scores = scores;
    it->second->topk = std::move(top);
    it->second->iterations = iterations;
    it->second->residual = residual;
    bytes_ += EntryBytes(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, scores, std::move(top), iterations, residual});
    index_.emplace(key, lru_.begin());
    bytes_ += EntryBytes(lru_.front());
  }
  ShrinkLocked();
  PublishLocked();
}

void ScoreCache::ShrinkLocked() {
  BEPI_METRIC_COUNTER(evict_counter, "server.cache.evictions");
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    ++evictions_;
    evict_counter->Increment();
    if (!victim.scores.empty()) {
      // Demote: drop the full vector, keep the top-K prefix, and give the
      // compact remnant a fresh trip through the LRU so hot seeds keep
      // their rankings while cold full vectors go first.
      bytes_ -= EntryBytes(victim);
      Vector().swap(victim.scores);
      bytes_ += EntryBytes(victim);
      lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
    } else {
      bytes_ -= EntryBytes(victim);
      index_.erase(victim.key);
      lru_.pop_back();
    }
  }
}

void ScoreCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (lru_.empty()) return;
  BEPI_METRIC_COUNTER(evict_counter, "server.cache.evictions");
  evictions_ += lru_.size();
  evict_counter->Increment(static_cast<std::uint64_t>(lru_.size()));
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  PublishLocked();
}

std::uint64_t ScoreCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
std::uint64_t ScoreCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
std::uint64_t ScoreCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}
std::uint64_t ScoreCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace bepi
