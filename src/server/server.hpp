// The long-running query server behind `bepi_cli serve`: line-delimited
// JSON requests (server/protocol.hpp) answered by a fixed pool of worker
// slots over one preprocessed BepiSolver, with the operational hardening
// a shared deployment needs:
//
//  * Admission control (server/admission.hpp): a bounded queue between
//    the protocol reader(s) and the workers. A full queue rejects
//    immediately with "overloaded" and an honest retry_after_ms hint.
//  * Deadlines: each accepted query gets a CancelToken armed with its
//    deadline_ms (or the server default), linked to the server's
//    cancel-everything flag. Solvers poll it at restart-cycle and
//    power-iteration boundaries only, so an unexpired token leaves
//    results bit-identical to one-shot `bepi_cli query`. Expiry surfaces
//    as a "deadline_exceeded" response — or, with allow_partial, the
//    best-so-far iterate completed through back-substitution plus its
//    residual as an explicit error bound.
//  * Graceful drain: SIGTERM/SIGINT (or stdin EOF) stops admission,
//    lets in-flight and queued work finish within drain_ms, then cancels
//    whatever remains cooperatively. Serve* returns Ok so the CLI can
//    flush --metrics-out/--trace-out and exit 0.
//  * Watchdog: a background thread samples per-worker busy time; a
//    worker stuck past wedge_ms gets its job's token cancelled and the
//    server reports health "degraded" until the worker recovers.
//
// health/stats verbs are answered inline on the reader thread — they
// bypass the queue entirely so probes stay accurate under overload.
#ifndef BEPI_SERVER_SERVER_HPP_
#define BEPI_SERVER_SERVER_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "core/bepi.hpp"
#include "server/admission.hpp"
#include "server/cache.hpp"
#include "server/protocol.hpp"
#include "solver/gmres.hpp"

namespace bepi {

struct ServeOptions {
  /// Worker slots (each owns a GmresWorkspace). Minimum 1.
  int slots = 2;
  /// Accepted-but-not-started queries the queue may hold.
  index_t max_queue = 64;
  /// Deadline applied to requests that do not carry their own
  /// deadline_ms. 0 = no default deadline.
  double default_deadline_ms = 0.0;
  /// Graceful-drain budget: how long in-flight + queued work may keep
  /// running after shutdown before being cancelled cooperatively.
  double drain_ms = 5000.0;
  /// Watchdog sampling interval.
  double watchdog_ms = 250.0;
  /// A worker busy on one request longer than this is considered wedged:
  /// its token is cancelled and health degrades until it recovers.
  double wedge_ms = 30000.0;
  /// Inbound request-line length cap (transport-enforced).
  std::size_t max_line_bytes = 1 << 20;
  /// Socket mode: give up writing to a client that does not drain its
  /// responses within this budget (the connection is dropped).
  double write_timeout_ms = 5000.0;
  /// Socket mode: concurrent connection cap. A connection past the cap
  /// is answered with one "overloaded" line and closed immediately, so
  /// per-connection thread/stack use stays bounded. Minimum 1.
  int max_conns = 64;
  /// Slow-query threshold: a query whose wall time (admission to write)
  /// exceeds this gets one structured log line with its full timing
  /// breakdown and its request_id becomes the latency histogram's
  /// exemplar. 0 disables the slow-query log.
  double slow_ms = 0.0;
  /// Where the flight recorder is dumped (Perfetto-loadable JSON) on a
  /// watchdog trip or a fatal-signal drain. Empty disables auto-dumps;
  /// the "dump" verb still works.
  std::string flight_dump_path = "bepi-flightrec.json";
  /// Hot-seed score cache budget in MiB (server/cache.hpp). A repeated
  /// (model, seed) query is answered from memory, byte-identical to a
  /// cold solve. 0 disables the cache.
  int cache_mb = 0;
  /// Coalescing scheduler: most queries one worker slot pulls and solves
  /// as a single blocked Schur solve (BepiSolver::QueryMulti). 1 disables
  /// coalescing entirely (the pre-batching scalar path).
  int batch_max = 8;
  /// How long a slot that popped one query waits for more to coalesce
  /// with it, in milliseconds. 0 (the default) batches opportunistically:
  /// only backlog that already queued up is coalesced and no request is
  /// ever delayed. > 0 trades that bounded wait for wider batches.
  double batch_window_ms = 0.0;
};

/// Point-in-time server state, for the "stats" verb and tests. Counters
/// are server-owned (always live, independent of the metrics switch).
struct ServerStatsSnapshot {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_invalid = 0;  // parse + schema + range rejections
  std::uint64_t rejected_draining = 0;
  std::uint64_t rejected_conns = 0;  // connections shed at the max_conns cap
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t partial = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t slow_queries = 0;  // queries past the slow_ms threshold
  std::uint64_t queue_depth = 0;
  std::uint64_t inflight = 0;
  // Hot-seed score cache (server/cache.hpp); all zero when disabled.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes = 0;
  /// Queries answered by a coalesced multi-seed solve (batch width >= 2).
  std::uint64_t coalesced = 0;
  std::string health;  // "serving" | "draining" | "degraded"
};

class QueryServer {
 public:
  /// `solver` must be preprocessed/loaded and outlive the server.
  QueryServer(const BepiSolver& solver, ServeOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Serves one line-delimited JSON session over a stream pair (the
  /// stdin/stdout mode; also the unit-test harness). Returns after a
  /// graceful drain triggered by EOF or shutdown; Ok on a clean drain.
  Status ServeStream(std::istream& in, std::ostream& out);

  /// Binds a Unix-domain socket at `path` (replacing any stale file) and
  /// serves concurrent connections until shutdown, then drains.
  Status ServeUnixSocket(const std::string& path);

  /// Initiates drain as if SIGTERM had arrived (idempotent, any thread).
  void RequestDrain();

  ServerStatsSnapshot Stats() const;

 private:
  struct Conn;
  struct WorkerSlot;

  void StartWorkers();
  void WorkerLoop(int slot);
  void WatchdogLoop();
  /// Stops admission, waits out the drain budget, cancels stragglers,
  /// joins workers + watchdog. Idempotent.
  void Drain();

  void ReadLoop(const std::shared_ptr<Conn>& conn);
  void HandleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
  /// `try_cache` is false when ExecuteBatch already ran (and missed) the
  /// cache lookup for this request, so it is not double-counted.
  void ExecuteQuery(int slot, const std::shared_ptr<Conn>& conn,
                    const Request& req,
                    const std::shared_ptr<CancelToken>& token,
                    CancelToken::Clock::time_point admitted_at,
                    bool try_cache = true);
  /// The admission jobs the coalescing scheduler submits: each deposits
  /// one accepted query into its slot's pending list; the worker then
  /// solves the whole list as one batch (ExecuteBatch).
  void CollectPending(int slot, std::shared_ptr<Conn> conn, Request req,
                      std::shared_ptr<CancelToken> token,
                      CancelToken::Clock::time_point admitted_at);
  /// Answers everything CollectPending queued on `slot`: cache hits
  /// immediately, one remaining query via the scalar path, two or more
  /// via a coalesced BepiSolver::QueryMulti with per-seed dedupe.
  void ExecuteBatch(int slot);
  /// Answers `req` from the hot-seed cache when possible (counts the
  /// hit/miss). Returns false on a miss — the caller must solve.
  bool TryCacheHit(const std::shared_ptr<Conn>& conn, const Request& req,
                   std::int64_t queue_ns,
                   CancelToken::Clock::time_point admitted_at);
  /// Shared response tail of every solved query (scalar or coalesced):
  /// error mapping, counters, latency recording, response assembly and
  /// write, slow-query forensics, and — for converged full solves when
  /// `insert_cache` — the hot-seed cache insert. A non-null `topk` is a
  /// top-k-mode deliverable (core/topk.hpp): the response's "topk" array
  /// is its sorted entries, "mode" names the request's mode, eps mode
  /// adds the per-score "bound", and the full-vector rendering and cache
  /// insert are skipped (the pruned path never materializes the vector).
  void FinishQuery(const std::shared_ptr<Conn>& conn, const Request& req,
                   const Result<Vector>& scores, const QueryStats& stats,
                   bool coalesced, bool insert_cache, std::int64_t queue_ns,
                   std::int64_t solve_ns,
                   CancelToken::Clock::time_point admitted_at,
                   const TopKResult* topk = nullptr);
  void WriteToConn(const std::shared_ptr<Conn>& conn, const std::string& line);
  std::string HealthLine(const std::string& id_json) const;
  std::string StatsLine(const std::string& id_json) const;
  std::string MetricsLine(const std::string& id_json) const;
  std::string DumpLine(const std::string& id_json) const;
  std::string HealthState() const;
  /// Server-minted trace id ("srv-<n>") for requests without one.
  std::string MintRequestId();
  /// Auto-dump the flight recorder to options_.flight_dump_path (at most
  /// once per process incident burst; logs the destination).
  void DumpFlightRecorder(const char* why);

  const BepiSolver& solver_;
  ServeOptions options_;
  AdmissionController admission_;
  /// Hot-seed score cache, keyed under the loaded model's fingerprint.
  ScoreCache cache_;
  const std::uint64_t fingerprint_;
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  std::vector<std::thread> worker_threads_;
  std::thread watchdog_thread_;

  /// Set after the drain budget expires (and linked into every request
  /// token) so stragglers stop at their next cooperative checkpoint.
  std::atomic<bool> cancel_all_{false};
  std::atomic<bool> degraded_{false};
  std::atomic<bool> drained_{false};
  std::atomic<int> inflight_{0};
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool workers_started_ = false;

  /// Self-pipe waking the accept loop and FdTransport readers on drain.
  int wake_pipe_[2] = {-1, -1};

  // Server-owned counters (see ServerStatsSnapshot).
  std::atomic<std::uint64_t> accepted_{0}, completed_{0},
      rejected_overload_{0}, rejected_invalid_{0}, rejected_draining_{0},
      rejected_conns_{0}, deadline_exceeded_{0}, cancelled_{0}, partial_{0},
      watchdog_trips_{0}, slow_queries_{0}, coalesced_{0};
  /// Sequence for server-minted request ids.
  std::atomic<std::uint64_t> request_seq_{0};
};

}  // namespace bepi

#endif  // BEPI_SERVER_SERVER_HPP_
