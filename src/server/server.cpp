#include "server/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/faultinject.hpp"
#include "common/flightrec.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/promtext.hpp"
#include "common/shutdown.hpp"
#include "solver/outcome.hpp"

namespace bepi {

namespace {

using Clock = CancelToken::Clock;

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::int64_t ToEpochNs(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

void AppendReal(std::string* out, real_t v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", static_cast<double>(v));
  *out += buf;
}

std::int64_t ToNs(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e9);
}

/// The response's "timing" object: where this request's wall time went
/// (queue wait, solve, total) plus one entry per degradation-chain hop
/// with its own wall time, outcome and iteration count.
void AppendTimingJson(std::string* out, std::int64_t queue_ns,
                      std::int64_t solve_ns, std::int64_t total_ns,
                      const QueryReport& report) {
  *out += "\"timing\":{\"queue_ns\":" + std::to_string(queue_ns);
  *out += ",\"solve_ns\":" + std::to_string(solve_ns);
  *out += ",\"total_ns\":" + std::to_string(total_ns);
  *out += ",\"stages\":[";
  for (std::size_t i = 0; i < report.attempts.size(); ++i) {
    const SolveAttempt& a = report.attempts[i];
    if (i > 0) *out += ",";
    *out += "{\"stage\":" + JsonQuote(a.stage);
    *out += ",\"ns\":" + std::to_string(ToNs(a.seconds));
    *out += ",\"outcome\":" + JsonQuote(SolveOutcomeName(a.outcome));
    *out += ",\"iterations\":" + std::to_string(a.iterations);
    *out += "}";
  }
  *out += "]}";
}

}  // namespace

/// One client session: the transport plus the write-side serialization
/// (reader thread and several workers interleave responses on it) and a
/// dead latch so a failed write poisons the connection exactly once.
struct QueryServer::Conn {
  LineTransport* transport = nullptr;
  std::unique_ptr<LineTransport> owned;  // socket mode owns its transport
  std::mutex write_mu;
  std::atomic<bool> dead{false};
};

/// Per-worker execution state sampled by the watchdog. The tokens are
/// held via shared_ptr under a mutex so a watchdog cancel can never race
/// the worker releasing the request; a coalesced batch parks every
/// member's token here so a wedged blocked solve cancels them all.
struct QueryServer::WorkerSlot {
  /// One accepted query parked here between admission and the coalesced
  /// solve (CollectPending -> ExecuteBatch).
  struct PendingQuery {
    std::shared_ptr<Conn> conn;
    Request req;
    std::shared_ptr<CancelToken> token;
    Clock::time_point admitted_at;
  };

  GmresWorkspace workspace;
  std::vector<PendingQuery> pending;  // worker-thread-only scratch
  std::mutex mu;
  std::vector<std::shared_ptr<CancelToken>> active_tokens;  // guarded by mu
  std::string active_request_id;                            // guarded by mu
  std::atomic<std::int64_t> busy_since_ns{0};               // 0 = idle
  std::atomic<bool> wedged{false};
};

QueryServer::QueryServer(const BepiSolver& solver, ServeOptions options)
    : solver_(solver),
      options_(options),
      admission_([&] {
        AdmissionOptions a;
        a.max_queue = static_cast<std::size_t>(
            std::max<index_t>(1, options.max_queue));
        a.slots = std::max(1, options.slots);
        return a;
      }()),
      cache_(static_cast<std::uint64_t>(std::max(0, options.cache_mb)) << 20),
      fingerprint_(ModelFingerprint(solver)) {
  options_.slots = std::max(1, options_.slots);
  workers_.reserve(static_cast<std::size_t>(options_.slots));
  for (int i = 0; i < options_.slots; ++i) {
    workers_.push_back(std::make_unique<WorkerSlot>());
  }
  if (pipe(wake_pipe_) == 0) {
    for (int fd : wake_pipe_) {
      fcntl(fd, F_SETFL, fcntl(fd, F_GETFL) | O_NONBLOCK);
      fcntl(fd, F_SETFD, fcntl(fd, F_GETFD) | FD_CLOEXEC);
    }
  } else {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
  // Register every server metric up front so the snapshot's key set is
  // deterministic (the docs glossary cross-check diffs it against the
  // OPERATIONS.md table) rather than depending on which paths ran.
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const char* name :
       {"server.accepted", "server.completed", "server.rejected_invalid",
        "server.rejected_conns", "server.deadline_exceeded",
        "server.cancelled", "server.watchdog_trips", "server.slow_queries"}) {
    registry.GetCounter(name);
  }
  registry.GetGauge("server.inflight");
  registry.GetHistogram("server.latency_seconds");
  registry.GetHistogram("server.batch_width");
}

QueryServer::~QueryServer() {
  Drain();
  for (int fd : wake_pipe_) {
    if (fd >= 0) close(fd);
  }
}

void QueryServer::RequestDrain() {
  admission_.BeginDrain();
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &b, 1);
  }
  drain_cv_.notify_all();
}

// --- worker pool -------------------------------------------------------

void QueryServer::StartWorkers() {
  if (workers_started_) return;
  workers_started_ = true;
  // The flight recorder is always on while serving: its record path is a
  // handful of relaxed atomic stores into per-thread rings, cheap enough
  // to leave running so the buffer already holds the story when an
  // incident (watchdog trip, fatal signal) asks for a dump.
  FlightRecorder::SetEnabled(true);
  worker_threads_.reserve(workers_.size());
  for (int i = 0; i < static_cast<int>(workers_.size()); ++i) {
    worker_threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
}

void QueryServer::WorkerLoop(int slot) {
  // The coalescing scheduler: pull up to batch_max accepted queries in
  // one pop (waiting batch_window_ms for stragglers when configured),
  // park them on this slot, then answer the whole batch — cache hits
  // immediately, the rest through one coalesced Schur solve.
  std::vector<AdmissionJob> jobs;
  const std::size_t max_batch =
      static_cast<std::size_t>(std::max(1, options_.batch_max));
  while (admission_.NextBatch(&jobs, max_batch, options_.batch_window_ms)) {
    const int width = static_cast<int>(jobs.size());
    inflight_.fetch_add(width, std::memory_order_relaxed);
    BEPI_METRIC_GAUGE(inflight_gauge, "server.inflight");
    inflight_gauge->Set(static_cast<double>(
        inflight_.load(std::memory_order_relaxed)));
    workers_[slot]->pending.clear();
    for (AdmissionJob& job : jobs) job(slot);
    ExecuteBatch(slot);
    inflight_.fetch_sub(width, std::memory_order_relaxed);
    inflight_gauge->Set(static_cast<double>(
        inflight_.load(std::memory_order_relaxed)));
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
    }
    drain_cv_.notify_all();
  }
}

void QueryServer::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  while (!drained_.load(std::memory_order_relaxed)) {
    drain_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                 std::max(1.0, options_.watchdog_ms)));
    if (drained_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    const std::int64_t now = NowNs();
    const std::int64_t wedge_ns =
        static_cast<std::int64_t>(options_.wedge_ms * 1e6);
    bool any_wedged = false;
    for (auto& slot : workers_) {
      const std::int64_t busy_since =
          slot->busy_since_ns.load(std::memory_order_relaxed);
      if (busy_since != 0 && now - busy_since > wedge_ns) {
        std::lock_guard<std::mutex> slot_lock(slot->mu);
        // Re-check under the slot lock: the worker may have finished the
        // wedged job and started a fresh request between the sample above
        // and here — cancelling *that* token would kill an innocent query.
        if (slot->busy_since_ns.load(std::memory_order_relaxed) !=
            busy_since) {
          continue;
        }
        any_wedged = true;
        if (!slot->wedged.exchange(true, std::memory_order_relaxed)) {
          watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
          BEPI_METRIC_COUNTER(trips, "server.watchdog_trips");
          trips->Increment();
          BEPI_LOG(Warning) << "watchdog: worker busy for "
                            << static_cast<double>(now - busy_since) / 1e6
                            << " ms, cancelling its request(s) (request_id="
                            << slot->active_request_id << ", "
                            << slot->active_tokens.size() << " token(s))";
          FlightRecord(FlightEventType::kWatchdog,
                       slot->active_request_id.c_str(), "worker wedged",
                       now - busy_since);
          // A coalesced batch wedges as a unit: cancel every member so
          // none of them is left waiting on the stuck solve.
          for (const auto& token : slot->active_tokens) {
            if (token != nullptr) token->Cancel();
          }
          // Watchdog degradation is the incident the recorder exists for:
          // persist the rings now, while the wedged request's hop trail is
          // still in the buffer.
          DumpFlightRecorder("watchdog trip");
        }
      }
    }
    degraded_.store(any_wedged, std::memory_order_relaxed);
    lock.lock();
  }
}

void QueryServer::Drain() {
  if (drained_.exchange(true)) return;
  admission_.BeginDrain();
  const auto budget = std::chrono::duration<double, std::milli>(
      std::max(0.0, options_.drain_ms));
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(lock, budget, [this] {
      return inflight_.load(std::memory_order_relaxed) == 0 &&
             admission_.depth() == 0;
    });
  }
  // Budget spent (or nothing left): whatever still runs or waits in the
  // queue now observes cancel_all_ at its next cooperative checkpoint and
  // winds down with a "cancelled" response.
  cancel_all_.store(true, std::memory_order_relaxed);
  drain_cv_.notify_all();
  if (workers_started_) {
    for (std::thread& t : worker_threads_) t.join();
    worker_threads_.clear();
    if (watchdog_thread_.joinable()) watchdog_thread_.join();
    workers_started_ = false;
  }
}

// --- request handling --------------------------------------------------

void QueryServer::WriteToConn(const std::shared_ptr<Conn>& conn,
                              const std::string& line) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->dead.load(std::memory_order_relaxed)) return;
  const Status status = conn->transport->WriteLine(line);
  if (!status.ok()) {
    conn->dead.store(true, std::memory_order_relaxed);
    BEPI_LOG(Warning) << "dropping connection: " << status.ToString();
  }
}

std::string QueryServer::HealthState() const {
  if (admission_.draining()) return "draining";
  if (degraded_.load(std::memory_order_relaxed)) return "degraded";
  return "serving";
}

std::string QueryServer::HealthLine(const std::string& id_json) const {
  std::string out = "{";
  if (!id_json.empty()) out += "\"id\":" + id_json + ",";
  out += "\"ok\":true,\"health\":" + JsonQuote(HealthState());
  out += ",\"inflight\":" +
         std::to_string(inflight_.load(std::memory_order_relaxed));
  out += ",\"queue_depth\":" + std::to_string(admission_.depth());
  out += ",\"slots\":" + std::to_string(workers_.size());
  out += "}";
  return out;
}

std::string QueryServer::StatsLine(const std::string& id_json) const {
  const ServerStatsSnapshot s = Stats();
  Histogram* latency =
      MetricsRegistry::Global().GetHistogram("server.latency_seconds");
  const HistogramSnapshot h = latency->Snapshot();
  std::string out = "{";
  if (!id_json.empty()) out += "\"id\":" + id_json + ",";
  out += "\"ok\":true,\"health\":" + JsonQuote(s.health);
  const auto field = [&out](const char* name, std::uint64_t v) {
    out += ",\"";
    out += name;
    out += "\":" + std::to_string(v);
  };
  field("accepted", s.accepted);
  field("completed", s.completed);
  field("rejected_overload", s.rejected_overload);
  field("rejected_invalid", s.rejected_invalid);
  field("rejected_draining", s.rejected_draining);
  field("rejected_conns", s.rejected_conns);
  field("deadline_exceeded", s.deadline_exceeded);
  field("cancelled", s.cancelled);
  field("partial", s.partial);
  field("watchdog_trips", s.watchdog_trips);
  field("slow_queries", s.slow_queries);
  field("queue_depth", s.queue_depth);
  field("inflight", s.inflight);
  field("coalesced", s.coalesced);
  field("cache_hits", s.cache_hits);
  field("cache_misses", s.cache_misses);
  field("cache_evictions", s.cache_evictions);
  field("cache_bytes", s.cache_bytes);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                ",\"latency_ms\":{\"count\":%llu,\"p50\":%.3f,\"p99\":%.3f"
                ",\"max\":%.3f}",
                static_cast<unsigned long long>(h.count), h.p50 * 1e3,
                h.p99 * 1e3, h.max * 1e3);
  out += buf;
  out += "}";
  return out;
}

ServerStatsSnapshot QueryServer::Stats() const {
  ServerStatsSnapshot s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  s.rejected_conns = rejected_conns_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.partial = partial_.load(std::memory_order_relaxed);
  s.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  s.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  s.queue_depth = admission_.depth();
  s.inflight =
      static_cast<std::uint64_t>(inflight_.load(std::memory_order_relaxed));
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_bytes = cache_.bytes();
  s.health = HealthState();
  return s;
}

std::string QueryServer::MetricsLine(const std::string& id_json) const {
  // The whole registry as Prometheus text exposition, carried as one JSON
  // string field so the line protocol stays one-object-per-line. Answered
  // inline on the reader thread like health/stats: scrapes must not queue
  // behind the very overload they are trying to observe.
  std::string out = "{";
  if (!id_json.empty()) out += "\"id\":" + id_json + ",";
  out += "\"ok\":true,\"metrics\":" + JsonQuote(RenderPrometheusText());
  out += "}";
  return out;
}

std::string QueryServer::DumpLine(const std::string& id_json) const {
  std::ostringstream trace;
  const Status status = FlightRecorder::DumpJson(trace);
  if (!status.ok()) {
    return ErrorResponseLine(id_json, protocol_errors::kInternal,
                             status.message());
  }
  FlightRecord(FlightEventType::kDump, nullptr, "dump verb");
  // DumpJson pretty-prints across lines for dump files; the line protocol
  // is one object per line, so flatten the raw newlines (in-string ones
  // are escaped and unaffected).
  std::string flat = trace.str();
  std::replace(flat.begin(), flat.end(), '\n', ' ');
  while (!flat.empty() && flat.back() == ' ') flat.pop_back();
  std::string out = "{";
  if (!id_json.empty()) out += "\"id\":" + id_json + ",";
  out += "\"ok\":true,\"flightrec\":" + flat;
  out += "}";
  return out;
}

std::string QueryServer::MintRequestId() {
  return "srv-" +
         std::to_string(request_seq_.fetch_add(1, std::memory_order_relaxed));
}

void QueryServer::DumpFlightRecorder(const char* why) {
  if (options_.flight_dump_path.empty()) return;
  FlightRecord(FlightEventType::kDump, nullptr, why);
  const Status status =
      FlightRecorder::DumpJsonFile(options_.flight_dump_path);
  if (status.ok()) {
    BEPI_LOG(Warning) << "flight recorder dumped to "
                      << options_.flight_dump_path << " (" << why << ")";
  } else {
    BEPI_LOG(Warning) << "flight recorder dump failed: " << status.ToString();
  }
}

void QueryServer::HandleLine(const std::shared_ptr<Conn>& conn,
                             const std::string& line) {
  if (line.empty()) return;  // blank lines are keep-alive noise
  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    BEPI_METRIC_COUNTER(rejected, "server.rejected_invalid");
    rejected->Increment();
    const bool schema = parsed.status().code() == StatusCode::kInvalidArgument;
    WriteToConn(conn, ErrorResponseLine(
                          "", schema ? protocol_errors::kInvalidArgument
                                     : protocol_errors::kParse,
                          parsed.status().message()));
    return;
  }
  Request req = *parsed;
  if (req.op == RequestOp::kHealth) {
    WriteToConn(conn, HealthLine(req.id_json));
    return;
  }
  if (req.op == RequestOp::kStats) {
    WriteToConn(conn, StatsLine(req.id_json));
    return;
  }
  if (req.op == RequestOp::kMetrics) {
    WriteToConn(conn, MetricsLine(req.id_json));
    return;
  }
  if (req.op == RequestOp::kDump) {
    WriteToConn(conn, DumpLine(req.id_json));
    return;
  }

  // Trace context: every query carries a request_id from here on —
  // client-supplied or server-minted — and every response echoes it.
  if (req.request_id.empty()) req.request_id = MintRequestId();

  const index_t n = solver_.decomposition().n;
  if (req.seed < 0 || req.seed >= n) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    FlightRecord(FlightEventType::kShed, req.request_id.c_str(),
                 "seed out of range", req.seed);
    WriteToConn(conn,
                ErrorResponseLine(req.id_json,
                                  protocol_errors::kInvalidArgument,
                                  "seed " + std::to_string(req.seed) +
                                      " out of range [0, " +
                                      std::to_string(n) + ")",
                                  -1.0, req.request_id));
    return;
  }
  // The parser caps top_k at 1e9 without knowing the model; n is only
  // known here.
  if (req.top_k > n) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    FlightRecord(FlightEventType::kShed, req.request_id.c_str(),
                 "top_k out of range", req.top_k);
    WriteToConn(conn,
                ErrorResponseLine(req.id_json,
                                  protocol_errors::kInvalidArgument,
                                  "top_k " + std::to_string(req.top_k) +
                                      " out of range [1, " +
                                      std::to_string(n) + "]",
                                  -1.0, req.request_id));
    return;
  }

  auto token = std::make_shared<CancelToken>();
  const double deadline_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    // The clock starts at admission: queue time counts against the
    // deadline, so a request cannot wait out its own usefulness.
    token->SetDeadlineAfter(std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double, std::milli>(deadline_ms)));
  }
  token->LinkFlag(&cancel_all_);

  const auto admitted_at = Clock::now();
  auto server = this;
  double retry_after_ms = -1.0;
  const Status admitted = admission_.Submit(
      [server, conn, req, token, admitted_at](int slot) {
        server->CollectPending(slot, conn, req, token, admitted_at);
      },
      &retry_after_ms);
  if (!admitted.ok()) {
    if (admitted.code() == StatusCode::kResourceExhausted) {
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      FlightRecord(FlightEventType::kShed, req.request_id.c_str(),
                   "overloaded", static_cast<std::int64_t>(retry_after_ms));
      WriteToConn(conn, ErrorResponseLine(req.id_json,
                                          protocol_errors::kOverloaded,
                                          admitted.message(),
                                          retry_after_ms, req.request_id));
    } else {
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      FlightRecord(FlightEventType::kShed, req.request_id.c_str(),
                   "draining");
      WriteToConn(conn, ErrorResponseLine(req.id_json,
                                          protocol_errors::kDraining,
                                          admitted.message(), -1.0,
                                          req.request_id));
    }
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  BEPI_METRIC_COUNTER(accepted, "server.accepted");
  accepted->Increment();
  FlightRecord(FlightEventType::kAdmit, req.request_id.c_str(), "",
               req.seed);
}

void QueryServer::CollectPending(int slot, std::shared_ptr<Conn> conn,
                                 Request req,
                                 std::shared_ptr<CancelToken> token,
                                 Clock::time_point admitted_at) {
  workers_[slot]->pending.push_back(WorkerSlot::PendingQuery{
      std::move(conn), std::move(req), std::move(token), admitted_at});
}

void QueryServer::ExecuteBatch(int slot) {
  WorkerSlot& ws = *workers_[slot];
  std::vector<WorkerSlot::PendingQuery> batch = std::move(ws.pending);
  ws.pending.clear();
  if (batch.empty()) return;
  BEPI_METRIC_HISTOGRAM(width_hist, "server.batch_width");
  width_hist->RecordAlways(static_cast<double>(batch.size()));
  if (batch.size() == 1) {
    // A batch of one takes the scalar path verbatim — cache lookup,
    // per-slot workspace reuse and all — so an unloaded server behaves
    // exactly like the pre-batching one.
    const WorkerSlot::PendingQuery& pq = batch.front();
    ExecuteQuery(slot, pq.conn, pq.req, pq.token, pq.admitted_at);
    return;
  }

  // Cache pass first: hits leave without occupying the slot, and what
  // remains is exactly the work that needs a solver.
  std::vector<std::size_t> missed;
  missed.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const WorkerSlot::PendingQuery& pq = batch[i];
    const std::int64_t queue_ns = NowNs() - ToEpochNs(pq.admitted_at);
    if (!TryCacheHit(pq.conn, pq.req, queue_ns, pq.admitted_at)) {
      missed.push_back(i);
    }
  }
  if (missed.empty()) return;
  if (missed.size() == 1) {
    // Everything else hit: the lone miss takes the scalar path (its
    // lookup already counted, so ExecuteQuery must not repeat it).
    const WorkerSlot::PendingQuery& pq = batch[missed[0]];
    ExecuteQuery(slot, pq.conn, pq.req, pq.token, pq.admitted_at,
                 /*try_cache=*/false);
    return;
  }

  const std::int64_t exec_start_ns = NowNs();
  {
    // Tokens and busy timestamp change together under mu so the
    // watchdog's locked re-check can never pair a stale timestamp with
    // fresh tokens. The whole batch wedges (and is cancelled) as a unit.
    std::lock_guard<std::mutex> lock(ws.mu);
    ws.active_tokens.clear();
    for (const std::size_t i : missed) {
      ws.active_tokens.push_back(batch[i].token);
    }
    ws.active_request_id = batch[missed.front()].req.request_id;
    ws.busy_since_ns.store(exec_start_ns, std::memory_order_relaxed);
  }

  if (BEPI_FAULT_INJECTED(fault_sites::kServerExecStall)) {
    FlightRecord(FlightEventType::kFault,
                 batch[missed.front()].req.request_id.c_str(),
                 fault_sites::kServerExecStall);
    const auto stall_start = Clock::now();
    while (!batch[missed.front()].token->Expired() &&
           Clock::now() - stall_start < std::chrono::seconds(10)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  // Duplicate seeds within the batch solve once: group members share the
  // first occurrence's result when it converges cleanly.
  std::vector<std::vector<std::size_t>> groups;
  {
    std::unordered_map<index_t, std::size_t> group_of;
    group_of.reserve(missed.size());
    for (const std::size_t i : missed) {
      // Top-k deliverables never share: their answer shape depends on
      // (k, mode, eps), not just the seed. Each gets a singleton group —
      // exact-mode items still join the blocked Schur solve inside
      // QueryMulti; only their back-substitution is per-column.
      if (batch[i].req.top_k > 0) {
        groups.emplace_back(1, i);
        continue;
      }
      const auto [it, inserted] =
          group_of.emplace(batch[i].req.seed, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(i);
    }
  }

  std::vector<MultiQueryItem> items;
  items.reserve(groups.size());
  for (const auto& group : groups) {
    const WorkerSlot::PendingQuery& primary = batch[group.front()];
    MultiQueryItem item;
    item.seed = primary.req.seed;
    item.control.cancel = primary.token.get();
    item.control.allow_partial = primary.req.allow_partial;
    item.control.request_id = primary.req.request_id.c_str();
    if (primary.req.top_k > 0) {
      item.topk.k = primary.req.top_k;
      item.topk.mode =
          primary.req.mode_eps ? TopKMode::kEps : TopKMode::kExact;
      item.topk.eps = static_cast<real_t>(primary.req.eps);
      item.topk.exclude = primary.req.seed;
    }
    items.push_back(item);
  }
  std::vector<MultiQueryResult> results;
  const Status batch_status = solver_.QueryMulti(items, &results);
  const std::int64_t solve_ns = NowNs() - exec_start_ns;

  {
    std::lock_guard<std::mutex> lock(ws.mu);
    ws.busy_since_ns.store(0, std::memory_order_relaxed);
    ws.active_tokens.clear();
    ws.active_request_id.clear();
  }
  ws.wedged.store(false, std::memory_order_relaxed);

  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t m = 0; m < groups[g].size(); ++m) {
      const WorkerSlot::PendingQuery& pq = batch[groups[g][m]];
      const std::int64_t queue_ns = exec_start_ns - ToEpochNs(pq.admitted_at);
      if (!batch_status.ok()) {
        // Batch-level precondition failure (cannot normally happen for
        // seeds validated at admission): every member gets the error.
        FinishQuery(pq.conn, pq.req, batch_status, QueryStats(),
                    /*coalesced=*/false, /*insert_cache=*/false, queue_ns,
                    solve_ns, pq.admitted_at);
        continue;
      }
      const MultiQueryResult& r = results[g];
      const bool is_topk = pq.req.top_k > 0;  // singleton group by construction
      const bool shareable =
          r.status.ok() && r.stats.outcome == SolveOutcome::kConverged;
      if (m == 0 || shareable) {
        Result<Vector> scores =
            r.status.ok() ? Result<Vector>(r.scores) : Result<Vector>(r.status);
        FinishQuery(pq.conn, pq.req, scores, r.stats, r.coalesced,
                    /*insert_cache=*/m == 0 && !is_topk, queue_ns, solve_ns,
                    pq.admitted_at,
                    is_topk && r.status.ok() ? &r.topk : nullptr);
      } else {
        // Duplicate of a primary that failed or only partially finished:
        // re-solve under this request's own token and partial policy so a
        // member with a healthy deadline is not poisoned by the
        // primary's cancellation.
        QueryStats dup_stats;
        QueryControl control;
        control.cancel = pq.token.get();
        control.allow_partial = pq.req.allow_partial;
        control.request_id = pq.req.request_id.c_str();
        const std::int64_t dup_start_ns = NowNs();
        auto dup =
            solver_.Query(pq.req.seed, &dup_stats, &ws.workspace, control);
        FinishQuery(pq.conn, pq.req, dup, dup_stats, /*coalesced=*/false,
                    /*insert_cache=*/true, queue_ns, NowNs() - dup_start_ns,
                    pq.admitted_at);
      }
    }
  }
}

bool QueryServer::TryCacheHit(const std::shared_ptr<Conn>& conn,
                              const Request& req, std::int64_t queue_ns,
                              Clock::time_point admitted_at) {
  if (!cache_.enabled()) return false;
  // Eps-mode answers depend on the request's eps (truncated solve, its
  // own bound): never served from — and never counted against — the
  // cache. Exact top-k answers ARE the cached ranking's prefix: a
  // demoted compact entry keeps serving top_k <= kCompactTopK.
  if (req.mode_eps) return false;
  const index_t lookup_k = req.top_k > 0 ? req.top_k : req.topk;
  const bool lookup_scores = req.top_k > 0 ? false : req.want_scores;
  ScoreCacheHit hit;
  if (!cache_.Lookup(fingerprint_, req.seed, lookup_k, lookup_scores,
                     &hit)) {
    return false;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  BEPI_METRIC_COUNTER(completed, "server.completed");
  completed->Increment();
  const std::int64_t admitted_ns = ToEpochNs(admitted_at);
  const double total_seconds =
      std::chrono::duration<double>(Clock::now() - admitted_at).count();
  Histogram* latency =
      MetricsRegistry::Global().GetHistogram("server.latency_seconds");
  latency->RecordAlways(total_seconds);
  // Deliberately NOT fed into the retry-after EWMA: hits are orders of
  // magnitude cheaper than solves, and the hint must describe the cost a
  // rejected (cache-missing) retry would actually pay.

  // Only converged un-degraded solves are inserted, so a hit replays
  // outcome "converged" with the original solve's iteration count and
  // residual byte-for-byte; "stage":"cache" is what marks it a hit.
  std::string out = "{";
  if (!req.id_json.empty()) out += "\"id\":" + req.id_json + ",";
  out += "\"ok\":true,\"request_id\":" + JsonQuote(req.request_id);
  out += ",\"seed\":" + std::to_string(req.seed);
  out += ",\"partial\":false";
  out += ",\"outcome\":" + JsonQuote(SolveOutcomeName(SolveOutcome::kConverged));
  out += ",\"stage\":\"cache\"";
  out += ",\"iterations\":" + std::to_string(hit.iterations);
  out += ",\"residual\":";
  AppendReal(&out, hit.residual);
  char buf[48];
  std::snprintf(buf, sizeof buf, ",\"ms\":%.3f", total_seconds * 1e3);
  out += buf;
  out += ",";
  QueryReport cache_report;
  SolveAttempt attempt;
  attempt.stage = "cache";
  attempt.outcome = SolveOutcome::kConverged;
  attempt.iterations = hit.iterations;
  attempt.residual = hit.residual;
  attempt.seconds = 0.0;
  cache_report.attempts.push_back(std::move(attempt));
  AppendTimingJson(&out, queue_ns, 0, NowNs() - admitted_ns, cache_report);
  out += ",\"topk\":[";
  for (std::size_t i = 0; i < hit.topk.size(); ++i) {
    if (i > 0) out += ",";
    out += "[";
    out += std::to_string(hit.topk[i].first);
    out += ",";
    AppendReal(&out, hit.topk[i].second);
    out += "]";
  }
  out += "]";
  if (req.top_k > 0) out += ",\"mode\":\"exact\"";
  if (req.want_scores) {
    out += ",\"scores\":[";
    for (std::size_t i = 0; i < hit.scores.size(); ++i) {
      if (i > 0) out += ",";
      AppendReal(&out, hit.scores[i]);
    }
    out += "]";
  }
  out += "}";
  WriteToConn(conn, out);
  FlightRecord(FlightEventType::kComplete, req.request_id.c_str(), "cache",
               NowNs() - admitted_ns);
  return true;
}

void QueryServer::ExecuteQuery(int slot, const std::shared_ptr<Conn>& conn,
                               const Request& req,
                               const std::shared_ptr<CancelToken>& token,
                               Clock::time_point admitted_at, bool try_cache) {
  WorkerSlot& ws = *workers_[slot];
  const std::int64_t exec_start_ns = NowNs();
  const std::int64_t admitted_ns = ToEpochNs(admitted_at);
  const std::int64_t queue_ns = exec_start_ns - admitted_ns;
  if (try_cache && TryCacheHit(conn, req, queue_ns, admitted_at)) return;
  {
    // Token and busy timestamp change together under mu so the watchdog's
    // locked re-check can never pair a stale timestamp with a fresh token.
    std::lock_guard<std::mutex> lock(ws.mu);
    ws.active_tokens.assign(1, token);
    ws.active_request_id = req.request_id;
    ws.busy_since_ns.store(exec_start_ns, std::memory_order_relaxed);
  }

  // Deterministic watchdog driver: appear wedged (sleeping, not spinning)
  // until the watchdog cancels this request's token, so tests can trip the
  // trip-and-dump path on a timescale they control. Hard 10 s cap in case
  // nobody is watching.
  if (BEPI_FAULT_INJECTED(fault_sites::kServerExecStall)) {
    FlightRecord(FlightEventType::kFault, req.request_id.c_str(),
                 fault_sites::kServerExecStall);
    const auto stall_start = Clock::now();
    while (!token->Expired() &&
           Clock::now() - stall_start < std::chrono::seconds(10)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  QueryStats stats;
  QueryControl control;
  control.cancel = token.get();
  control.allow_partial = req.allow_partial;
  control.request_id = req.request_id.c_str();
  Result<Vector> scores = Vector();
  Result<TopKResult> tk = TopKResult();
  if (req.top_k > 0) {
    TopKOptions opts;
    opts.k = req.top_k;
    opts.mode = req.mode_eps ? TopKMode::kEps : TopKMode::kExact;
    opts.eps = static_cast<real_t>(req.eps);
    opts.exclude = req.seed;  // match the dense response's TopK(..., seed)
    tk = solver_.QueryTopK(req.seed, opts, &stats, &ws.workspace, control);
    if (!tk.ok()) scores = Result<Vector>(tk.status());
  } else {
    scores = solver_.Query(req.seed, &stats, &ws.workspace, control);
  }
  const std::int64_t solve_ns = NowNs() - exec_start_ns;

  {
    std::lock_guard<std::mutex> lock(ws.mu);
    ws.busy_since_ns.store(0, std::memory_order_relaxed);
    ws.active_tokens.clear();
    ws.active_request_id.clear();
  }
  ws.wedged.store(false, std::memory_order_relaxed);

  FinishQuery(conn, req, scores, stats, /*coalesced=*/false,
              /*insert_cache=*/req.top_k == 0, queue_ns, solve_ns,
              admitted_at,
              req.top_k > 0 && tk.ok() ? &*tk : nullptr);
}

void QueryServer::FinishQuery(const std::shared_ptr<Conn>& conn,
                              const Request& req,
                              const Result<Vector>& scores,
                              const QueryStats& stats, bool coalesced,
                              bool insert_cache, std::int64_t queue_ns,
                              std::int64_t solve_ns,
                              Clock::time_point admitted_at,
                              const TopKResult* topk) {
  const std::int64_t admitted_ns = ToEpochNs(admitted_at);
  const double total_seconds =
      std::chrono::duration<double>(Clock::now() - admitted_at).count();
  Histogram* latency =
      MetricsRegistry::Global().GetHistogram("server.latency_seconds");
  latency->RecordAlways(total_seconds);
  // Feed the retry-after estimator from full solves only: a burst of
  // instantly-cancelled requests (deadline already expired, drain) would
  // otherwise drag the EWMA toward zero and make retry_after_ms
  // dishonestly small during exactly the overload it describes.
  if (scores.ok() && stats.outcome != SolveOutcome::kCancelled) {
    admission_.RecordServiceSeconds(stats.seconds);
  }

  std::string out;
  bool succeeded = false;
  if (!scores.ok()) {
    const StatusCode code = scores.status().code();
    const char* error = protocol_errors::kInternal;
    if (code == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      BEPI_METRIC_COUNTER(deadline, "server.deadline_exceeded");
      deadline->Increment();
      error = protocol_errors::kDeadlineExceeded;
      FlightRecord(FlightEventType::kDeadline, req.request_id.c_str(), "",
                   solve_ns);
    } else if (code == StatusCode::kCancelled) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      BEPI_METRIC_COUNTER(cancelled, "server.cancelled");
      cancelled->Increment();
      error = protocol_errors::kCancelled;
      FlightRecord(FlightEventType::kCancel, req.request_id.c_str(), "",
                   solve_ns);
    }
    out = ErrorResponseLine(req.id_json, error, scores.status().message(),
                            -1.0, req.request_id);
  } else {
    succeeded = true;
    const bool is_partial = stats.outcome == SolveOutcome::kCancelled;
    if (is_partial) partial_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    BEPI_METRIC_COUNTER(completed, "server.completed");
    completed->Increment();
    if (coalesced) coalesced_.fetch_add(1, std::memory_order_relaxed);
    // Only clean converged primary-hop solves enter the cache: a partial,
    // degraded or stochastic (mc) answer must never be replayed to a
    // later request as if it were the healthy-path result.
    if (insert_cache && stats.outcome == SolveOutcome::kConverged &&
        stats.report.attempts.size() <= 1) {
      cache_.Insert(fingerprint_, req.seed, *scores, stats.total_iterations,
                    stats.residual);
    }

    out = "{";
    if (!req.id_json.empty()) out += "\"id\":" + req.id_json + ",";
    out += "\"ok\":true,\"request_id\":" + JsonQuote(req.request_id);
    out += ",\"seed\":" + std::to_string(req.seed);
    out += ",\"partial\":";
    out += is_partial ? "true" : "false";
    if (coalesced) out += ",\"coalesced\":true";
    out += ",\"outcome\":" + JsonQuote(SolveOutcomeName(stats.outcome));
    // Which degradation-chain stage produced the answer ("ilu0+gmres" ..
    // "mc"); operators alert on "mc" = every linear-algebra path is down.
    if (!stats.report.attempts.empty()) {
      out += ",\"stage\":" + JsonQuote(stats.report.attempts.back().stage);
    }
    out += ",\"iterations\":" + std::to_string(stats.total_iterations);
    // %.17g round-trips doubles exactly: these scores are bit-comparable
    // against a one-shot `bepi_cli query --dump-scores` of the same model.
    out += ",\"residual\":";
    AppendReal(&out, stats.residual);
    char buf[48];
    std::snprintf(buf, sizeof buf, ",\"ms\":%.3f", total_seconds * 1e3);
    out += buf;
    out += ",";
    AppendTimingJson(&out, queue_ns, solve_ns,
                     NowNs() - admitted_ns, stats.report);
    out += ",\"topk\":[";
    // A top-k-mode deliverable already carries its sorted (node, score)
    // pairs; a dense solve is ranked (and truncated) here.
    const auto& ranking =
        topk != nullptr ? topk->entries : TopK(*scores, req.topk, req.seed);
    for (std::size_t i = 0; i < ranking.size(); ++i) {
      if (i > 0) out += ",";
      out += "[";
      out += std::to_string(ranking[i].first);
      out += ",";
      AppendReal(&out, ranking[i].second);
      out += "]";
    }
    out += "]";
    if (topk != nullptr) {
      out += ",\"mode\":";
      out += req.mode_eps ? "\"eps\"" : "\"exact\"";
      if (req.mode_eps) {
        out += ",\"bound\":";
        AppendReal(&out, topk->error_bound);
      }
    }
    if (req.want_scores) {
      out += ",\"scores\":[";
      const Vector& v = *scores;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out += ",";
        AppendReal(&out, v[i]);
      }
      out += "]";
    }
    out += "}";
  }

  const std::int64_t write_start_ns = NowNs();
  WriteToConn(conn, out);
  const std::int64_t write_ns = NowNs() - write_start_ns;
  const std::int64_t total_ns = NowNs() - admitted_ns;
  const char* stage = stats.report.attempts.empty()
                          ? "-"
                          : stats.report.attempts.back().stage.c_str();
  if (succeeded) {
    FlightRecord(FlightEventType::kComplete, req.request_id.c_str(), stage,
                 total_ns);
  }

  // Slow-query forensics: one structured line per offender with the full
  // breakdown (the response's timing object cannot carry write_ns — the
  // response is serialized before the write), and the offender's
  // request_id pinned to the latency histogram as its exemplar so a scrape
  // showing a fat tail names a concrete request to go look up.
  if (options_.slow_ms > 0.0 &&
      static_cast<double>(total_ns) / 1e6 > options_.slow_ms) {
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
    BEPI_METRIC_COUNTER(slow, "server.slow_queries");
    slow->Increment();
    latency->SetExemplar(static_cast<double>(total_ns) / 1e9,
                         req.request_id);
    FlightRecord(FlightEventType::kSlowQuery, req.request_id.c_str(), stage,
                 total_ns);
    BEPI_LOG(Warning) << "slow query: request_id=" << req.request_id
                      << " seed=" << req.seed << " stage=" << stage
                      << " queue_ns=" << queue_ns << " solve_ns=" << solve_ns
                      << " write_ns=" << write_ns << " total_ns=" << total_ns
                      << " chain=[" << stats.report.Summary() << "]";
  }
}

// --- serve loops -------------------------------------------------------

void QueryServer::ReadLoop(const std::shared_ptr<Conn>& conn) {
  std::string line;
  while (!conn->dead.load(std::memory_order_relaxed)) {
    auto got = conn->transport->ReadLine(&line);
    if (!got.ok()) {
      const StatusCode code = got.status().code();
      if (code == StatusCode::kOutOfRange) {
        // Over-long line: already discarded in bounded memory; the
        // connection stays usable.
        rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
        WriteToConn(conn, ErrorResponseLine("", protocol_errors::kParse,
                                            got.status().message()));
        continue;
      }
      if (code == StatusCode::kCancelled) break;  // drain wake
      BEPI_LOG(Warning) << "closing connection: " << got.status().ToString();
      break;
    }
    if (!*got) break;  // clean EOF
    HandleLine(conn, line);
    if (ShutdownRequested()) break;
  }
}

Status QueryServer::ServeStream(std::istream& in, std::ostream& out) {
  StartWorkers();
  auto conn = std::make_shared<Conn>();
  StreamTransport transport(in, out, options_.max_line_bytes);
  conn->transport = &transport;
  ReadLoop(conn);
  // EOF (or a shutdown signal breaking the blocking read) ends the
  // session: stop admitting, drain, report how it ended.
  FlightRecord(FlightEventType::kShutdown, nullptr, "stream eof/drain");
  RequestDrain();
  Drain();
  if (ShutdownRequested()) {
    BEPI_LOG(Info) << "drained after signal " << ShutdownSignal();
    DumpFlightRecorder("fatal signal");
  }
  return Status::Ok();
}

Status QueryServer::ServeUnixSocket(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  fcntl(listen_fd, F_SETFD, fcntl(listen_fd, F_GETFD) | FD_CLOEXEC);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  unlink(path.c_str());  // replace a stale socket file from a crashed run
  if (bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const Status status =
        Status::IoError("bind " + path + ": " + std::strerror(errno));
    close(listen_fd);
    return status;
  }
  if (listen(listen_fd, 64) != 0) {
    const Status status =
        Status::IoError("listen " + path + ": " + std::strerror(errno));
    close(listen_fd);
    unlink(path.c_str());
    return status;
  }

  StartWorkers();
  BEPI_LOG(Info) << "serving on " << path << " (" << options_.slots
                 << " slots, queue " << options_.max_queue << ")";

  // Connection threads are detached and tracked only by this count:
  // each decrements it (and notifies, under the lock, so the waiter
  // below cannot race destruction) as its ReadLoop returns, so a
  // long-running server holds resources for live connections only —
  // never one dead thread per connection ever accepted.
  std::mutex conn_mu;
  std::condition_variable conn_cv;
  std::size_t live_conns = 0;
  const std::size_t max_conns =
      static_cast<std::size_t>(std::max(1, options_.max_conns));
  while (true) {
    struct pollfd fds[3];
    fds[0] = {listen_fd, POLLIN, 0};
    nfds_t nfds = 1;
    if (wake_pipe_[0] >= 0) fds[nfds++] = {wake_pipe_[0], POLLIN, 0};
    const int shutdown_fd = ShutdownPipeFd();
    if (shutdown_fd >= 0) fds[nfds++] = {shutdown_fd, POLLIN, 0};
    const int rc = poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        if (ShutdownRequested()) break;
        continue;
      }
      break;
    }
    bool woke = false;
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) != 0) woke = true;
    }
    if (woke || ShutdownRequested()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd = accept(listen_fd, nullptr, nullptr);
    if (cfd < 0) continue;
    {
      std::unique_lock<std::mutex> lock(conn_mu);
      if (live_conns >= max_conns) {
        lock.unlock();
        rejected_conns_.fetch_add(1, std::memory_order_relaxed);
        BEPI_METRIC_COUNTER(shed, "server.rejected_conns");
        shed->Increment();
        BEPI_LOG(Warning) << "shedding connection: " << max_conns
                          << " already open";
        FdTransport reject(cfd, options_.max_line_bytes,
                           options_.write_timeout_ms, wake_pipe_[0]);
        reject.WriteLine(ErrorResponseLine(
            "", protocol_errors::kOverloaded,
            "connection limit reached (" + std::to_string(max_conns) + ")",
            admission_.EstimateRetryAfterMs()));
        continue;  // FdTransport owns cfd and closes it
      }
      ++live_conns;
    }
    auto conn = std::make_shared<Conn>();
    conn->owned = std::make_unique<FdTransport>(
        cfd, options_.max_line_bytes, options_.write_timeout_ms,
        wake_pipe_[0]);
    conn->transport = conn->owned.get();
    std::thread([this, conn, &conn_mu, &conn_cv, &live_conns] {
      ReadLoop(conn);
      std::lock_guard<std::mutex> lock(conn_mu);
      --live_conns;
      conn_cv.notify_all();
    }).detach();
  }

  close(listen_fd);
  FlightRecord(FlightEventType::kShutdown, nullptr, "socket drain");
  RequestDrain();  // wakes every FdTransport poller via wake_pipe_
  Drain();
  {
    // Readers woke on wake_pipe_ above and writers are bounded by
    // write_timeout_ms, so every detached connection thread exits; wait
    // for the last one before the locals it references go away.
    std::unique_lock<std::mutex> lock(conn_mu);
    conn_cv.wait(lock, [&] { return live_conns == 0; });
  }
  unlink(path.c_str());
  if (ShutdownRequested()) {
    BEPI_LOG(Info) << "drained after signal " << ShutdownSignal();
    DumpFlightRecorder("fatal signal");
  }
  return Status::Ok();
}

}  // namespace bepi
