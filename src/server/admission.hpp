// Admission control for the query server: a bounded FIFO of accepted
// jobs between the protocol reader(s) and the worker slots. The queue
// depth is the only elastic buffer in the server — when it is full the
// server sheds load *immediately* with an `overloaded` rejection and a
// retry-after hint instead of queueing unboundedly (queue time would be
// silently added to every later request's latency until deadlines made
// the whole queue useless work).
//
// The retry-after hint is an honest estimate: an EWMA of recent service
// times scaled by the backlog a retrying client would face. Draining is a
// one-way latch: once BeginDrain() is called nothing is admitted again,
// workers finish what is queued (the caller bounds that with the drain
// budget and the per-job cancel tokens) and Next() returns false when the
// queue runs dry.
#ifndef BEPI_SERVER_ADMISSION_HPP_
#define BEPI_SERVER_ADMISSION_HPP_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.hpp"

namespace bepi {

/// Work accepted into the queue; invoked on a worker thread with that
/// worker's slot index (workers own per-slot solver workspaces).
using AdmissionJob = std::function<void(int slot)>;

struct AdmissionOptions {
  /// Jobs that may wait beyond the ones executing. Full queue = reject.
  std::size_t max_queue = 64;
  /// Worker slot count, used only to scale the retry-after estimate.
  int slots = 1;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Admits `job` or rejects it without blocking. Failure modes:
  /// kResourceExhausted (queue full; `*retry_after_ms` is set to the
  /// backlog-drain estimate when non-null) and kUnavailable-equivalent
  /// kFailedPrecondition (draining — the caller maps it to the protocol's
  /// "draining" error).
  Status Submit(AdmissionJob job, double* retry_after_ms);

  /// Worker pop: blocks until a job is available or the drain latch fires
  /// with an empty queue (returns false — the worker should exit).
  bool Next(AdmissionJob* job);

  /// Batching pop for the coalescing scheduler: blocks like Next for the
  /// first job, then greedily takes whatever else is already queued and —
  /// when still under `max_batch` and `window_ms` > 0 — keeps waiting up
  /// to `window_ms` (measured from the first pop) for more arrivals. The
  /// window trades a bounded latency add for batch width; window 0 is
  /// pure opportunistic coalescing (whatever backlog exists right now,
  /// zero added latency). During drain nothing waits: the batch is
  /// whatever is left. Returns false exactly when Next would.
  bool NextBatch(std::vector<AdmissionJob>* jobs, std::size_t max_batch,
                 double window_ms);

  /// Stop admitting and wake every blocked worker. Idempotent.
  void BeginDrain();
  bool draining() const;

  std::size_t depth() const;
  std::size_t capacity() const { return options_.max_queue; }

  /// Feeds the retry-after estimator; called by workers per completed job.
  void RecordServiceSeconds(double seconds);
  /// Milliseconds a rejected client should wait before retrying: the
  /// current backlog divided over the slots, in units of the service-time
  /// EWMA. Clamped to [1, 60000]; before any completion a 50 ms prior.
  double EstimateRetryAfterMs() const;

 private:
  double EstimateRetryAfterMsLocked() const;  // mu_ must be held

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<AdmissionJob> queue_;
  bool draining_ = false;
  double ewma_service_seconds_ = 0.0;
  bool have_service_sample_ = false;
};

}  // namespace bepi

#endif  // BEPI_SERVER_ADMISSION_HPP_
