#include "server/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fcntl.h>
#include <limits>

#include "common/faultinject.hpp"

namespace bepi {
namespace {

// --- JSON parser -------------------------------------------------------
// Recursive descent with the same strictness as the test-util validator
// (raw control chars, malformed escapes and trailing garbage all fail),
// plus value capture and a nesting depth cap.

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  int depth_left;

  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }

  Status Fail(const std::string& what) const {
    return Status::DataLoss(what + " at byte " + std::to_string(i));
  }

  Status ParseHex4(unsigned* out) {
    unsigned v = 0;
    for (int k = 0; k < 4; ++k) {
      if (i >= s.size()) return Fail("truncated \\u escape");
      const char c = s[i++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::Ok();
  }

  void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    if (i >= s.size() || s[i] != '"') return Fail("expected string");
    ++i;
    out->clear();
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        ++i;
        if (i >= s.size()) return Fail("truncated escape");
        const char e = s[i++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            BEPI_RETURN_IF_ERROR(ParseHex4(&cp));
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: a low surrogate must follow.
              if (i + 1 >= s.size() || s[i] != '\\' || s[i + 1] != 'u') {
                return Fail("lone high surrogate");
              }
              i += 2;
              unsigned lo = 0;
              BEPI_RETURN_IF_ERROR(ParseHex4(&lo));
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Fail("bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Fail("lone low surrogate");
            }
            AppendUtf8(cp, out);
            break;
          }
          default:
            return Fail("bad escape character");
        }
        continue;
      }
      out->push_back(c);
      ++i;
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = i;
    bool integral = true;
    if (i < s.size() && s[i] == '-') ++i;
    std::size_t digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++digits;
    }
    if (digits == 0) return Fail("expected value");
    if (digits > 1 && s[start + (s[start] == '-' ? 1 : 0)] == '0') {
      return Fail("leading zero in number");
    }
    if (i < s.size() && s[i] == '.') {
      integral = false;
      ++i;
      digits = 0;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
        ++digits;
      }
      if (digits == 0) return Fail("digits required after decimal point");
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      integral = false;
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      digits = 0;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
        ++digits;
      }
      if (digits == 0) return Fail("digits required in exponent");
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value = std::strtod(s.c_str() + start, nullptr);
    out->number_is_integral =
        integral && std::isfinite(out->number_value) &&
        std::fabs(out->number_value) <= 9007199254740992.0;  // 2^53
    return Status::Ok();
  }

  Status ParseValue(JsonValue* out) {
    if (depth_left <= 0) return Fail("nesting too deep");
    SkipWs();
    if (i >= s.size()) return Fail("expected value");
    const char c = s[i];
    if (c == '{') {
      ++i;
      out->type = JsonValue::Type::kObject;
      SkipWs();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return Status::Ok();
      }
      while (true) {
        SkipWs();
        std::string key;
        BEPI_RETURN_IF_ERROR(ParseString(&key));
        SkipWs();
        if (i >= s.size() || s[i] != ':') return Fail("expected ':'");
        ++i;
        JsonValue child;
        --depth_left;
        BEPI_RETURN_IF_ERROR(ParseValue(&child));
        ++depth_left;
        if (out->object_value.count(key) > 0) {
          return Fail("duplicate key \"" + key + "\"");
        }
        out->object_value.emplace(std::move(key), std::move(child));
        SkipWs();
        if (i >= s.size()) return Fail("unterminated object");
        if (s[i] == ',') {
          ++i;
          continue;
        }
        if (s[i] == '}') {
          ++i;
          return Status::Ok();
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++i;
      out->type = JsonValue::Type::kArray;
      SkipWs();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return Status::Ok();
      }
      while (true) {
        JsonValue child;
        --depth_left;
        BEPI_RETURN_IF_ERROR(ParseValue(&child));
        ++depth_left;
        out->array_value.push_back(std::move(child));
        SkipWs();
        if (i >= s.size()) return Fail("unterminated array");
        if (s[i] == ',') {
          ++i;
          continue;
        }
        if (s[i] == ']') {
          ++i;
          return Status::Ok();
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (s.compare(i, 4, "true") == 0) {
      i += 4;
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::Ok();
    }
    if (s.compare(i, 5, "false") == 0) {
      i += 5;
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::Ok();
    }
    if (s.compare(i, 4, "null") == 0) {
      i += 4;
      out->type = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text, int max_depth) {
  Parser p{text, 0, max_depth};
  JsonValue v;
  BEPI_RETURN_IF_ERROR(p.ParseValue(&v));
  p.SkipWs();
  if (p.i != text.size()) {
    return p.Fail("trailing garbage after JSON value");
  }
  return v;
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

// --- Request validation ------------------------------------------------

namespace {

constexpr std::size_t kMaxIdChars = 128;
constexpr std::size_t kMaxRequestIdChars = 64;

Status BadArg(const std::string& what) {
  return Status::InvalidArgument(what);
}

/// request_id charset is deliberately narrow — it lands verbatim in log
/// lines, flight-recorder slots and Prometheus exemplar labels.
bool ValidRequestId(const std::string& s) {
  if (s.empty() || s.size() > kMaxRequestIdChars) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == ':' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  std::string effective = line;
  if (BEPI_FAULT_INJECTED(fault_sites::kServerParseGarbage)) {
    // Deterministic hostile input: raw control bytes and broken syntax.
    effective = "\x01{\"op\":-garbage";
  }
  BEPI_ASSIGN_OR_RETURN(JsonValue root, ParseJson(effective));
  if (root.type != JsonValue::Type::kObject) {
    return Status::DataLoss("request must be a JSON object");
  }

  Request req;
  const auto* op = [&]() -> const JsonValue* {
    auto it = root.object_value.find("op");
    return it == root.object_value.end() ? nullptr : &it->second;
  }();
  if (op == nullptr || op->type != JsonValue::Type::kString) {
    return BadArg("missing or non-string \"op\"");
  }
  if (op->string_value == "query") {
    req.op = RequestOp::kQuery;
  } else if (op->string_value == "health") {
    req.op = RequestOp::kHealth;
  } else if (op->string_value == "stats") {
    req.op = RequestOp::kStats;
  } else if (op->string_value == "metrics") {
    req.op = RequestOp::kMetrics;
  } else if (op->string_value == "dump") {
    req.op = RequestOp::kDump;
  } else {
    return BadArg("unknown op \"" + op->string_value + "\"");
  }

  bool saw_seed = false;
  bool saw_topk = false;
  bool saw_top_k = false;
  bool saw_mode = false;
  bool saw_eps = false;
  for (const auto& [key, value] : root.object_value) {
    if (key == "op") continue;
    if (key == "id") {
      if (value.type == JsonValue::Type::kString) {
        if (value.string_value.size() > kMaxIdChars) {
          return BadArg("\"id\" longer than " + std::to_string(kMaxIdChars) +
                        " characters");
        }
        req.id_json = JsonQuote(value.string_value);
      } else if (value.type == JsonValue::Type::kNumber &&
                 value.number_is_integral) {
        req.id_json = std::to_string(
            static_cast<long long>(value.number_value));
      } else {
        return BadArg("\"id\" must be a string or an integer");
      }
      continue;
    }
    if (key == "request_id") {
      if (value.type != JsonValue::Type::kString ||
          !ValidRequestId(value.string_value)) {
        return BadArg("\"request_id\" must be 1-" +
                      std::to_string(kMaxRequestIdChars) +
                      " characters of [A-Za-z0-9._:-]");
      }
      req.request_id = value.string_value;
      continue;
    }
    if (req.op != RequestOp::kQuery) {
      return BadArg("unexpected key \"" + key + "\" for op \"" +
                    op->string_value + "\"");
    }
    if (key == "seed") {
      if (value.type != JsonValue::Type::kNumber ||
          !value.number_is_integral) {
        return BadArg("\"seed\" must be an integer");
      }
      req.seed = static_cast<index_t>(value.number_value);
      saw_seed = true;
    } else if (key == "topk") {
      if (value.type != JsonValue::Type::kNumber ||
          !value.number_is_integral || value.number_value < 0 ||
          value.number_value > 1e9) {
        return BadArg("\"topk\" must be an integer in [0, 1e9]");
      }
      req.topk = static_cast<index_t>(value.number_value);
      saw_topk = true;
    } else if (key == "top_k") {
      if (value.type != JsonValue::Type::kNumber ||
          !value.number_is_integral || value.number_value < 1 ||
          value.number_value > 1e9) {
        return BadArg("\"top_k\" must be an integer in [1, 1e9]");
      }
      req.top_k = static_cast<index_t>(value.number_value);
      saw_top_k = true;
    } else if (key == "mode") {
      if (value.type != JsonValue::Type::kString) {
        return BadArg("\"mode\" must be \"exact\" or \"eps\"");
      }
      if (value.string_value == "exact") {
        req.mode_eps = false;
      } else if (value.string_value == "eps") {
        req.mode_eps = true;
      } else {
        return BadArg("\"mode\" must be \"exact\" or \"eps\", got \"" +
                      value.string_value + "\"");
      }
      saw_mode = true;
    } else if (key == "eps") {
      if (value.type != JsonValue::Type::kNumber ||
          !std::isfinite(value.number_value) ||
          !(value.number_value > 0.0)) {
        return BadArg("\"eps\" must be a finite number > 0");
      }
      req.eps = value.number_value;
      saw_eps = true;
    } else if (key == "deadline_ms") {
      if (value.type != JsonValue::Type::kNumber ||
          !(value.number_value > 0.0) || value.number_value > 86400000.0) {
        return BadArg("\"deadline_ms\" must be a number in (0, 86400000]");
      }
      req.deadline_ms = value.number_value;
    } else if (key == "allow_partial") {
      if (value.type != JsonValue::Type::kBool) {
        return BadArg("\"allow_partial\" must be a boolean");
      }
      req.allow_partial = value.bool_value;
    } else if (key == "scores") {
      if (value.type != JsonValue::Type::kBool) {
        return BadArg("\"scores\" must be a boolean");
      }
      req.want_scores = value.bool_value;
    } else {
      return BadArg("unknown key \"" + key + "\"");
    }
  }
  if (req.op == RequestOp::kQuery && !saw_seed) {
    return BadArg("query requires an integer \"seed\"");
  }
  // Cross-field checks for the top-k query mode: each error names the
  // offending key so a client can fix the exact field.
  if (saw_mode && !saw_top_k) {
    return BadArg("\"mode\" requires \"top_k\"");
  }
  if (saw_eps && !req.mode_eps) {
    return BadArg("\"eps\" requires \"mode\":\"eps\"");
  }
  if (req.mode_eps && !saw_eps) {
    return BadArg("\"mode\":\"eps\" requires \"eps\"");
  }
  if (saw_top_k && req.want_scores) {
    return BadArg("\"top_k\" is incompatible with \"scores\":true");
  }
  if (saw_top_k && saw_topk) {
    return BadArg("\"top_k\" is incompatible with \"topk\"");
  }
  return req;
}

std::string ErrorResponseLine(const std::string& id_json,
                              const std::string& error,
                              const std::string& message,
                              double retry_after_ms,
                              const std::string& request_id) {
  std::string out = "{";
  if (!id_json.empty()) out += "\"id\":" + id_json + ",";
  out += "\"ok\":false,\"error\":" + JsonQuote(error);
  if (!request_id.empty()) {
    out += ",\"request_id\":" + JsonQuote(request_id);
  }
  if (retry_after_ms >= 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", retry_after_ms);
    out += ",\"retry_after_ms\":";
    out += buf;
  }
  out += ",\"message\":" + JsonQuote(message) + "}";
  return out;
}

// --- StreamTransport ---------------------------------------------------

StreamTransport::StreamTransport(std::istream& in, std::ostream& out,
                                 std::size_t max_line_bytes)
    : in_(in), out_(out), max_line_bytes_(max_line_bytes) {}

Result<bool> StreamTransport::ReadLine(std::string* line) {
  line->clear();
  // Char-at-a-time with the cap enforced as we go: a line that never ends
  // is discarded in O(1) memory instead of ballooning a getline buffer.
  bool overflow = false;
  int c;
  while ((c = in_.get()) != std::char_traits<char>::eof()) {
    if (c == '\n') {
      if (overflow) {
        return Status::OutOfRange("request line exceeds " +
                                  std::to_string(max_line_bytes_) + " bytes");
      }
      if (BEPI_FAULT_INJECTED(fault_sites::kServerShortRead)) {
        return Status::IoError("connection truncated mid-line (injected)");
      }
      return true;
    }
    if (line->size() >= max_line_bytes_) {
      overflow = true;
      line->clear();  // keep discarding, bounded
      continue;
    }
    line->push_back(static_cast<char>(c));
  }
  if (overflow) {
    return Status::OutOfRange("request line exceeds " +
                              std::to_string(max_line_bytes_) + " bytes");
  }
  if (!line->empty()) {
    // EOF mid-line: the client vanished between bytes.
    return Status::IoError("EOF mid-line");
  }
  return false;
}

Status StreamTransport::WriteLine(const std::string& line) {
  if (BEPI_FAULT_INJECTED(fault_sites::kServerSlowClient)) {
    return Status::IoError("client did not drain its responses (injected)");
  }
  out_ << line << '\n';
  out_.flush();
  if (!out_) return Status::IoError("write failed");
  return Status::Ok();
}

// --- FdTransport -------------------------------------------------------

FdTransport::FdTransport(int fd, std::size_t max_line_bytes,
                         double write_timeout_ms, int wake_fd)
    : fd_(fd),
      max_line_bytes_(max_line_bytes),
      write_timeout_ms_(write_timeout_ms),
      wake_fd_(wake_fd) {
  if (fd_ >= 0) {
    const int fl = fcntl(fd_, F_GETFL);
    if (fl >= 0) fcntl(fd_, F_SETFL, fl | O_NONBLOCK);
  }
}

FdTransport::~FdTransport() { Close(); }

void FdTransport::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<bool> FdTransport::ReadLine(std::string* line) {
  line->clear();
  bool overflow = false;
  while (true) {
    // Serve a complete line from the buffer first.
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      if (nl > max_line_bytes_ || overflow) {
        buffer_.erase(0, nl + 1);
        return Status::OutOfRange("request line exceeds " +
                                  std::to_string(max_line_bytes_) + " bytes");
      }
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (BEPI_FAULT_INJECTED(fault_sites::kServerShortRead)) {
        line->clear();
        return Status::IoError("connection truncated mid-line (injected)");
      }
      return true;
    }
    if (buffer_.size() > max_line_bytes_) {
      // Unterminated over-long line: discard what we have, keep draining.
      overflow = true;
      buffer_.clear();
    }
    if (fd_ < 0) return Status::IoError("transport closed");

    struct pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    nfds_t nfds = 1;
    if (wake_fd_ >= 0) {
      fds[1] = {wake_fd_, POLLIN, 0};
      nfds = 2;
    }
    const int rc = poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("poll failed reading request");
    }
    if (nfds == 2 && (fds[1].revents & POLLIN) != 0) {
      return Status::Cancelled("shutdown requested");
    }
    char chunk[4096];
    const ssize_t n = read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IoError("read failed");
    }
    if (n == 0) {
      if (overflow) {
        return Status::OutOfRange("request line exceeds " +
                                  std::to_string(max_line_bytes_) + " bytes");
      }
      if (!buffer_.empty()) {
        buffer_.clear();
        return Status::IoError("EOF mid-line");
      }
      return false;  // clean EOF
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Status FdTransport::WriteLine(const std::string& line) {
  if (fd_ < 0) return Status::IoError("transport closed");
  if (BEPI_FAULT_INJECTED(fault_sites::kServerSlowClient)) {
    return Status::IoError("client did not drain its responses (injected)");
  }
  std::string payload = line;
  payload.push_back('\n');
  std::size_t off = 0;
  while (off < payload.size()) {
    // MSG_NOSIGNAL: a peer that closed its socket must surface as EPIPE
    // (connection dropped), never as a process-killing SIGPIPE. Plain
    // pipes (tests, stdio plumbing) say ENOTSOCK; fall back to write()
    // for them — serve mode additionally ignores SIGPIPE process-wide.
    ssize_t n = send(fd_, payload.data() + off, payload.size() - off,
                     MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = write(fd_, payload.data() + off, payload.size() - off);
    }
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      return Status::IoError("write failed");
    }
    // Kernel buffer full: the client is not draining. Wait up to the
    // timeout for writability, then give up so a slow client can only
    // stall its own connection, never a worker forever.
    struct pollfd pfd = {fd_, POLLOUT, 0};
    const int rc =
        poll(&pfd, 1, static_cast<int>(write_timeout_ms_ > 0.0
                                           ? write_timeout_ms_
                                           : 1.0));
    if (rc < 0 && errno != EINTR) {
      return Status::IoError("poll failed writing response");
    }
    if (rc == 0) {
      return Status::IoError("client did not drain its responses within " +
                             std::to_string(write_timeout_ms_) + " ms");
    }
  }
  return Status::Ok();
}

}  // namespace bepi
