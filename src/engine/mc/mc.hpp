// Monte-Carlo random-walk RWR engine: the failure-independent terminal
// stage of the degradation chain and a cross-check oracle for every
// linear-algebra path.
//
// Every stage of the Krylov chain (core/resilient.hpp) consumes the same
// preprocessed artifacts — the reordered block factors, the Schur
// complement, the bound CSR kernels — so one corrupted model section or
// latent kernel bug can defeat all of them at once. This engine shares
// none of that: it estimates r = c * sum_t (1-c)^t (Ã^T)^t q by simulating
// restart-terminated walks directly on the raw adjacency structure
// (PowerWalk/ThunderRW, see PAPERS.md), which makes it
//
//   * a last-resort fallback: when every LA stage is broken, queries still
//     complete with an explicit confidence bound instead of failing, and
//   * an independent oracle: `bepi_cli crosscheck` fails loudly when an
//     exact solve falls outside the MC confidence interval.
//
// Estimator (end-point): a walk starts at X_0 ~ q; at each visited node it
// terminates with probability c (depositing one count at that node) and
// otherwise moves to a random out-neighbor, weight-proportionally. A walk
// that reaches a deadend without restarting dies and deposits nothing —
// exactly the leaked mass of the paper's substochastic deadend treatment
// (zero rows in Ã), so r̂(v) = count(v) / N is unbiased for Equation (2)'s
// solution. Each per-coordinate deposit is a Bernoulli(r(v)) trial, which
// is what makes the Hoeffding/Bernstein bounds below honest.
//
// Determinism: walk w draws from its own RNG stream seeded by a SplitMix64
// mix of (seed, w), and walk deposits are integer counts merged with
// relaxed atomic adds — addition of integers is exact and order-free, so
// results are bit-identical at any --threads for a fixed (seed, walks).
//
// Execution: walks run in fixed-size batches (McOptions::batch_size),
// step-interleaved ThunderRW-style — each loop advances every live walk in
// the batch by one step and prefetches the next adjacency row, hiding the
// random-access latency that dominates walk simulation. The CancelToken is
// polled at batch boundaries only, so an unexpired token never perturbs
// the numerics.
#ifndef BEPI_ENGINE_MC_MC_HPP_
#define BEPI_ENGINE_MC_MC_HPP_

#include <cstdint>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "graph/graph.hpp"
#include "solver/outcome.hpp"
#include "sparse/dense.hpp"

namespace bepi {

struct McOptions {
  /// Restart probability c (must match the solver being cross-checked).
  real_t restart_prob = 0.05;
  /// Walk budget: the hard cap on simulated walks per estimate.
  std::uint64_t walks = 100'000;
  /// Anytime target: keep walking until the per-coordinate Hoeffding
  /// half-width drops to this value (or the budget/deadline ends the run
  /// first). 0 runs the whole budget.
  real_t target_eps = 0.0;
  /// Confidence: every reported bound holds with probability >= 1-delta.
  double delta = 0.01;
  /// Walks advanced together per step-interleaved batch (also the
  /// cancellation-poll granularity).
  index_t batch_size = 256;
  /// Safety cap on steps per walk; 0 derives a cap from restart_prob with
  /// truncation bias below 1e-40 (see mc.cpp). Walks hitting the cap die.
  index_t max_steps = 0;
  /// Base seed of the per-walk SplitMix64 streams.
  std::uint64_t seed = 20170514;
  /// Cooperative cancellation, polled at batch boundaries. May be null.
  const CancelToken* cancel = nullptr;
  /// On expiry: true returns the estimate from the walks completed so far
  /// (outcome kCancelled, honest bound for that N); false returns the
  /// token's Status and no estimate.
  bool allow_partial = true;
};

/// An MC estimate plus everything needed to judge it: the walk count it
/// is based on and its confidence half-widths at level 1-delta.
struct McEstimate {
  /// r̂ in original node ids (length = num nodes). Entries sum to <= 1;
  /// the deficit is the deadend-leaked mass.
  Vector scores;
  std::uint64_t walks_completed = 0;
  std::uint64_t walks_requested = 0;
  std::uint64_t total_steps = 0;
  /// Per-coordinate Hoeffding half-width sqrt(ln(2/delta) / 2N): holds for
  /// any single fixed coordinate. The anytime loop drives this to
  /// target_eps.
  real_t hoeffding_eps = 0.0;
  /// Sup-norm half-width sqrt(ln(2n/delta) / 2N) (union bound over all n
  /// coordinates): |r̂ - r|_inf <= uniform_eps with prob >= 1-delta. This
  /// is the bound a query reports as its residual/error field.
  real_t uniform_eps = 0.0;
  double delta = 0.01;
  /// kConverged: target_eps reached (or full budget run with no target).
  /// kBudgetExhausted: walk cap hit before target_eps. kCancelled:
  /// deadline/cancel stopped the run early (allow_partial path).
  SolveOutcome outcome = SolveOutcome::kConverged;
  double seconds = 0.0;

  /// Empirical-Bernstein half-width for coordinate v, union-bounded over
  /// all n coordinates — much tighter than uniform_eps for the small
  /// probabilities typical of RWR scores. Valid simultaneously for all v
  /// with probability >= 1-delta.
  real_t BernsteinBound(index_t v) const;
  /// The per-coordinate bound crosscheck verifies against:
  /// min(uniform_eps, BernsteinBound(v)).
  real_t CheckBound(index_t v) const;
};

/// Simulates restart-terminated walks on a Graph. Construction snapshots
/// nothing mutable — the engine only reads the graph's CSR arrays (plus a
/// per-edge cumulative-weight table it builds once for weighted graphs) —
/// so one engine serves any number of concurrent estimates. The graph
/// must outlive the engine.
class McWalkEngine {
 public:
  explicit McWalkEngine(const Graph& g);

  index_t num_nodes() const;

  /// RWR from a single seed node (q = e_seed).
  Result<McEstimate> EstimateSeed(index_t seed, const McOptions& options) const;

  /// Personalized PageRank: q must be non-negative with positive sum; it
  /// is normalized internally. Walks sample their start node from q.
  Result<McEstimate> EstimateVector(const Vector& q,
                                    const McOptions& options) const;

  /// Per-coordinate Hoeffding half-width after `walks` walks.
  static real_t HoeffdingEps(std::uint64_t walks, double delta);
  /// Walks needed to drive HoeffdingEps to `eps`.
  static std::uint64_t WalksForEps(real_t eps, double delta);

 private:
  Result<McEstimate> Run(index_t seed, const Vector* start_cdf,
                         const McOptions& options) const;

  const Graph& graph_;
  bool weighted_ = false;
  /// Weighted graphs only: within-row prefix sums of edge weights
  /// (aligned with the CSR col_idx array), so neighbor sampling is one
  /// binary search per step.
  std::vector<real_t> row_cdf_;
};

}  // namespace bepi

#endif  // BEPI_ENGINE_MC_MC_HPP_
