#include "engine/mc/mc.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/faultinject.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace bepi {
namespace {

/// Seed of walk w's private RNG stream: two SplitMix64 rounds over the
/// base seed xored with the walk index. Every walk draws from its own
/// stream regardless of which thread runs it, which is what makes the
/// estimate a pure function of (seed, walks).
std::uint64_t WalkSeed(std::uint64_t base, std::uint64_t walk) {
  std::uint64_t state = base ^ (walk * 0x9e3779b97f4a7c15ULL);
  (void)SplitMix64(&state);
  return SplitMix64(&state);
}

/// Steps after which a still-live walk is killed. P(geometric(c) > k) =
/// (1-c)^k, so the truncation bias on any score is below (1-c)^cap;
/// cap = ceil(96/c) puts that under e^-96 < 1e-41 for any c in (0,1).
index_t DefaultMaxSteps(real_t c) {
  return static_cast<index_t>(std::ceil(96.0 / static_cast<double>(c)));
}

}  // namespace

real_t McEstimate::BernsteinBound(index_t v) const {
  if (walks_completed == 0) return 1.0;
  const double n = static_cast<double>(scores.size());
  const double N = static_cast<double>(walks_completed);
  const double p = static_cast<double>(scores[static_cast<std::size_t>(v)]);
  // Empirical Bernstein (Maurer & Pontil) for [0,1] samples, with the
  // sample variance of a Bernoulli written as p(1-p) and delta split
  // across all n coordinates.
  const double log_term = std::log(3.0 * n / delta);
  return static_cast<real_t>(std::sqrt(2.0 * p * (1.0 - p) * log_term / N) +
                             3.0 * log_term / N);
}

real_t McEstimate::CheckBound(index_t v) const {
  return std::min(uniform_eps, BernsteinBound(v));
}

real_t McWalkEngine::HoeffdingEps(std::uint64_t walks, double delta) {
  if (walks == 0) return 1.0;
  return static_cast<real_t>(
      std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(walks))));
}

std::uint64_t McWalkEngine::WalksForEps(real_t eps, double delta) {
  const double e = static_cast<double>(eps);
  return static_cast<std::uint64_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * e * e)));
}

McWalkEngine::McWalkEngine(const Graph& g) : graph_(g) {
  const std::vector<real_t>& values = g.adjacency().values();
  weighted_ = std::any_of(values.begin(), values.end(),
                          [](real_t w) { return w != 1.0; });
  if (!weighted_) return;
  // Within-row prefix sums so a weighted step is one binary search.
  const std::vector<index_t>& row_ptr = g.adjacency().row_ptr();
  row_cdf_.resize(values.size());
  for (index_t u = 0; u < g.num_nodes(); ++u) {
    real_t acc = 0.0;
    for (index_t e = row_ptr[static_cast<std::size_t>(u)];
         e < row_ptr[static_cast<std::size_t>(u) + 1]; ++e) {
      acc += values[static_cast<std::size_t>(e)];
      row_cdf_[static_cast<std::size_t>(e)] = acc;
    }
  }
}

index_t McWalkEngine::num_nodes() const { return graph_.num_nodes(); }

Result<McEstimate> McWalkEngine::EstimateSeed(index_t seed,
                                              const McOptions& options) const {
  if (seed < 0 || seed >= graph_.num_nodes()) {
    return Status::OutOfRange("mc: seed out of range");
  }
  return Run(seed, nullptr, options);
}

Result<McEstimate> McWalkEngine::EstimateVector(
    const Vector& q, const McOptions& options) const {
  if (static_cast<index_t>(q.size()) != graph_.num_nodes()) {
    return Status::InvalidArgument("mc: personalization vector length mismatch");
  }
  real_t total = 0.0;
  for (real_t v : q) {
    if (v < 0.0 || !std::isfinite(v)) {
      return Status::InvalidArgument(
          "mc: personalization weights must be non-negative and finite");
    }
    total += v;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("mc: personalization vector sums to zero");
  }
  // Normalized running CDF over all coordinates; start nodes are sampled
  // by binary search. Zero entries repeat the previous cumulative value,
  // so they are never selected.
  Vector cdf(q.size());
  real_t acc = 0.0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    acc += q[i] / total;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;
  return Run(-1, &cdf, options);
}

Result<McEstimate> McWalkEngine::Run(index_t seed, const Vector* start_cdf,
                                     const McOptions& options) const {
  if (options.restart_prob <= 0.0 || options.restart_prob >= 1.0) {
    return Status::InvalidArgument("mc: restart_prob must be in (0, 1)");
  }
  if (options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("mc: delta must be in (0, 1)");
  }
  if (options.walks == 0) {
    return Status::InvalidArgument("mc: walk budget must be positive");
  }
  if (BEPI_FAULT_INJECTED(fault_sites::kMcWalkStall)) {
    return Status::Internal("mc: injected walk stall (site mc.walk_stall)");
  }
  Timer timer;
  TraceSpan span("mc.estimate");
  const index_t n = graph_.num_nodes();
  const double c = static_cast<double>(options.restart_prob);
  const index_t batch =
      std::max<index_t>(1, std::min<index_t>(options.batch_size, 1 << 14));
  const index_t max_steps = options.max_steps > 0
                                ? options.max_steps
                                : DefaultMaxSteps(options.restart_prob);

  // The anytime contract: a target_eps below the budget's own Hoeffding
  // width shrinks the budget to exactly the walks needed, and a target
  // the budget cannot reach runs the whole budget (outcome
  // kBudgetExhausted). Deterministic — derived from options only.
  std::uint64_t budget = options.walks;
  bool target_reachable = false;
  if (options.target_eps > 0.0) {
    const std::uint64_t needed = WalksForEps(options.target_eps, options.delta);
    if (needed <= budget) {
      budget = std::max<std::uint64_t>(1, needed);
      target_reachable = true;
    }
  }

  const std::vector<index_t>& row_ptr = graph_.adjacency().row_ptr();
  const std::vector<index_t>& col_idx = graph_.adjacency().col_idx();

  // Shared integer deposit counts. Relaxed atomic adds of integers are
  // exact and commutative, so the merged counts — and the doubles derived
  // from them — do not depend on thread schedule.
  std::vector<std::atomic<std::uint64_t>> counts(static_cast<std::size_t>(n));
  for (auto& slot : counts) slot.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> walks_done{0};
  std::atomic<std::uint64_t> steps_done{0};

  // One step-interleaved batch of walks [lo, hi): every live walk advances
  // one step per round, with the next row prefetched as soon as it is
  // known, so the per-step cache miss of one walk overlaps the others'.
  auto run_batch = [&](index_t lo, index_t hi) {
    if (options.cancel != nullptr && options.cancel->Expired()) {
      // Skipped batches simply do not count: walks_done stays consistent
      // with the deposits actually made, keeping the partial bound honest.
      return;
    }
    const std::size_t m = static_cast<std::size_t>(hi - lo);
    std::vector<Rng> rng;
    rng.reserve(m);
    std::vector<index_t> cur(m);
    std::vector<std::uint32_t> live(m);
    std::vector<index_t> terminal;
    terminal.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      rng.emplace_back(WalkSeed(options.seed,
                                static_cast<std::uint64_t>(lo) + i));
      if (start_cdf == nullptr) {
        cur[i] = seed;
      } else {
        const double r = rng.back().NextDouble();
        cur[i] = static_cast<index_t>(
            std::upper_bound(start_cdf->begin(), start_cdf->end(), r) -
            start_cdf->begin());
      }
      live[i] = static_cast<std::uint32_t>(i);
    }
    std::uint64_t local_steps = 0;
    std::size_t alive = m;
    for (index_t step = 0; alive > 0 && step <= max_steps; ++step) {
      std::size_t w = 0;
      for (std::size_t k = 0; k < alive; ++k) {
        const std::size_t i = live[k];
        const index_t u = cur[i];
        if (rng[i].NextDouble() < c) {
          terminal.push_back(u);  // restart: the walk ends where it stands
          continue;
        }
        if (step == max_steps) continue;  // safety cap: the walk dies
        const index_t row_begin = row_ptr[static_cast<std::size_t>(u)];
        const index_t deg = row_ptr[static_cast<std::size_t>(u) + 1] - row_begin;
        if (deg == 0) continue;  // deadend: leaked mass, no deposit
        index_t next;
        if (!weighted_) {
          next = col_idx[static_cast<std::size_t>(
              row_begin + static_cast<index_t>(rng[i].NextBounded(
                              static_cast<std::uint64_t>(deg))))];
        } else {
          const real_t* cdf_begin = row_cdf_.data() + row_begin;
          const real_t r =
              static_cast<real_t>(rng[i].NextDouble()) * cdf_begin[deg - 1];
          next = col_idx[static_cast<std::size_t>(
              row_begin +
              (std::upper_bound(cdf_begin, cdf_begin + deg, r) - cdf_begin))];
        }
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&row_ptr[static_cast<std::size_t>(next)]);
        __builtin_prefetch(&col_idx[static_cast<std::size_t>(
            row_ptr[static_cast<std::size_t>(next)])]);
#endif
        cur[i] = next;
        ++local_steps;
        live[w++] = static_cast<std::uint32_t>(i);
      }
      alive = w;
    }
    for (index_t v : terminal) {
      counts[static_cast<std::size_t>(v)].fetch_add(1,
                                                    std::memory_order_relaxed);
    }
    walks_done.fetch_add(m, std::memory_order_relaxed);
    steps_done.fetch_add(local_steps, std::memory_order_relaxed);
  };

  // Rounds bound the cancellation latency; they do not affect results —
  // per-walk streams and commutative counts make the estimate a function
  // of which walk indices ran, and an uncancelled run always runs
  // [0, budget).
  const std::uint64_t round_size = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(batch) *
          static_cast<std::uint64_t>(
              std::max(1, ParallelContext::Global().num_threads())),
      4096);
  bool cancelled = false;
  std::uint64_t launched = 0;
  while (launched < budget) {
    if (options.cancel != nullptr && options.cancel->Expired()) {
      cancelled = true;
      break;
    }
    const std::uint64_t this_round = std::min(budget - launched, round_size);
    ParallelFor(static_cast<index_t>(launched),
                static_cast<index_t>(launched + this_round), batch, run_batch);
    launched += this_round;
    if (walks_done.load(std::memory_order_relaxed) < launched) {
      cancelled = true;  // some batches were skipped by an expiring token
      break;
    }
  }

  const std::uint64_t completed = walks_done.load(std::memory_order_relaxed);
  if (cancelled && (!options.allow_partial || completed == 0)) {
    return options.cancel->ToStatus("mc estimate");
  }

  McEstimate est;
  est.walks_requested = budget;
  est.walks_completed = completed;
  est.total_steps = steps_done.load(std::memory_order_relaxed);
  est.delta = options.delta;
  est.scores.resize(static_cast<std::size_t>(n));
  const real_t inv = static_cast<real_t>(1.0) / static_cast<real_t>(completed);
  for (std::size_t i = 0; i < est.scores.size(); ++i) {
    est.scores[i] =
        static_cast<real_t>(counts[i].load(std::memory_order_relaxed)) * inv;
  }
  est.hoeffding_eps = HoeffdingEps(completed, options.delta);
  est.uniform_eps = static_cast<real_t>(
      std::sqrt(std::log(2.0 * static_cast<double>(n) / options.delta) /
                (2.0 * static_cast<double>(completed))));
  if (cancelled) {
    est.outcome = SolveOutcome::kCancelled;
  } else if (options.target_eps > 0.0 && !target_reachable) {
    est.outcome = SolveOutcome::kBudgetExhausted;
  } else {
    est.outcome = SolveOutcome::kConverged;
  }
  est.seconds = timer.Seconds();

  if (MetricsEnabled()) {
    BEPI_METRIC_COUNTER(runs, "mc.runs");
    BEPI_METRIC_COUNTER(walks, "mc.walks");
    BEPI_METRIC_COUNTER(steps, "mc.steps");
    runs->Increment();
    walks->Increment(completed);
    steps->Increment(est.total_steps);
    if (cancelled) {
      BEPI_METRIC_COUNTER(cancelled_runs, "mc.cancelled");
      cancelled_runs->Increment();
    }
  }
  if (span.active()) {
    span.Arg("walks", static_cast<std::int64_t>(completed));
    span.Arg("steps", static_cast<std::int64_t>(est.total_steps));
    span.Arg("uniform_eps", static_cast<double>(est.uniform_eps));
    span.Arg("outcome", SolveOutcomeName(est.outcome));
  }
  return est;
}

}  // namespace bepi
