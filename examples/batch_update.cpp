// Dynamic-graph batch updates (paper Section 5): "a conventional strategy
// for preprocessing methods on dynamic graphs is batch update — store edge
// insertions for one day and re-preprocess the changed graph at midnight.
// Our method is desirable for this case since it is efficient in terms of
// preprocessing time." This example simulates several update batches: each
// batch appends new edges, re-preprocesses with BePI, and serves queries,
// reporting the re-preprocessing cost that makes the strategy viable.
//
// Usage: batch_update [--nodes=15000] [--edges=150000] [--batches=4]
//                     [--batch_edges=7500] [--seed=5]
#include <cstdio>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/bepi.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace bepi;
  Flags flags = Flags::Parse(argc, argv);
  const index_t nodes = flags.GetInt("nodes", 15000);
  const index_t base_edges = flags.GetInt("edges", 150000);
  const index_t batches = flags.GetInt("batches", 4);
  const index_t batch_edges = flags.GetInt("batch_edges", 7500);
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 5)));

  RmatOptions gen;
  gen.num_nodes = nodes;
  gen.num_edges = base_edges;
  auto graph = GenerateRmat(gen, &rng);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  std::vector<Edge> edges = graph->EdgeList();
  std::printf("Day 0 graph: %lld nodes, %zu edges\n\n",
              static_cast<long long>(nodes), edges.size());

  const index_t probe = rng.UniformIndex(0, nodes - 1);
  Table table({"day", "edges", "re-preprocess (s)", "model (MB)",
               "query (ms)", "probe top-1"});
  for (index_t day = 0; day <= batches; ++day) {
    if (day > 0) {
      // The day's batch: preferential-attachment-flavored new links.
      for (index_t i = 0; i < batch_edges; ++i) {
        const index_t src = rng.UniformIndex(0, nodes - 1);
        const index_t dst =
            edges[static_cast<std::size_t>(rng.UniformIndex(
                     0, static_cast<index_t>(edges.size()) - 1))]
                .dst;
        if (src != dst) edges.push_back({src, dst});
      }
    }
    auto g = Graph::FromEdges(nodes, edges);
    if (!g.ok()) return 1;

    BepiOptions options;
    BepiSolver solver(options);
    Status status = solver.Preprocess(*g);
    if (!status.ok()) {
      std::fprintf(stderr, "preprocess failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    QueryStats stats;
    auto scores = solver.Query(probe, &stats);
    if (!scores.ok()) return 1;
    auto top = TopK(*scores, 1, probe);
    table.AddRow({Table::Int(day), Table::IntGrouped(g->num_edges()),
                  Table::Num(solver.preprocess_seconds()),
                  Table::Num(static_cast<double>(solver.PreprocessedBytes()) /
                                 (1 << 20),
                             2),
                  Table::Num(stats.seconds * 1e3, 2),
                  top.empty() ? "-" : Table::Int(top[0].first)});
  }
  table.Print();
  std::printf(
      "\nRe-preprocessing after each batch stays cheap (sub-second here),\n"
      "which is exactly why the paper recommends BePI for batch-updated\n"
      "dynamic graphs; a Bear/LU-style method would redo a cost that is\n"
      "orders of magnitude larger every day.\n");
  return 0;
}
