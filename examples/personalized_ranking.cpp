// Personalized ranking / friend recommendation on a synthetic social
// network — the paper's motivating application (Sections 1 and 2.1).
// Generates a scale-free graph, preprocesses it once with BePI, then
// serves top-k recommendation queries for several users, excluding the
// user itself and its existing friends.
//
// Usage: personalized_ranking [--nodes=20000] [--degree=8] [--topk=5]
//                             [--users=4] [--seed=42]
#include <cstdio>
#include <unordered_set>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/bepi.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  bepi::Flags flags = bepi::Flags::Parse(argc, argv);
  const bepi::index_t nodes = flags.GetInt("nodes", 20000);
  const bepi::index_t degree = flags.GetInt("degree", 8);
  const bepi::index_t topk = flags.GetInt("topk", 5);
  const bepi::index_t users = flags.GetInt("users", 4);
  bepi::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));

  std::printf("Generating a Barabasi-Albert social network "
              "(%lld users, ~%lld friendships each)...\n",
              static_cast<long long>(nodes), static_cast<long long>(degree));
  auto graph = bepi::GenerateBarabasiAlbert(nodes, degree, &rng);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("Graph has %lld directed edges.\n\n",
              static_cast<long long>(graph->num_edges()));

  bepi::BepiOptions options;  // paper defaults: c = 0.05, eps = 1e-9
  bepi::BepiSolver solver(options);
  bepi::Status status = solver.Preprocess(*graph);
  if (!status.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("BePI preprocessing: %.2f s, preprocessed data %.2f MB\n\n",
              solver.preprocess_seconds(),
              static_cast<double>(solver.PreprocessedBytes()) / (1 << 20));

  for (bepi::index_t i = 0; i < users; ++i) {
    const bepi::index_t user = rng.UniformIndex(0, nodes - 1);
    bepi::QueryStats stats;
    auto scores = solver.Query(user, &stats);
    if (!scores.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   scores.status().ToString().c_str());
      return 1;
    }
    // Current friends are not recommendation candidates.
    std::unordered_set<bepi::index_t> friends;
    const auto& adj = graph->adjacency();
    for (bepi::index_t p = adj.row_ptr()[static_cast<std::size_t>(user)];
         p < adj.row_ptr()[static_cast<std::size_t>(user) + 1]; ++p) {
      friends.insert(adj.col_idx()[static_cast<std::size_t>(p)]);
    }
    auto ranking = bepi::TopK(*scores, topk + static_cast<bepi::index_t>(
                                                  friends.size()) + 1,
                              user);
    std::printf("User %lld (%.1f ms query, %lld GMRES iterations) — "
                "top-%lld friend recommendations:\n",
                static_cast<long long>(user), stats.seconds * 1e3,
                static_cast<long long>(stats.iterations),
                static_cast<long long>(topk));
    bepi::Table table({"candidate", "rwr score", "already friend?"});
    bepi::index_t shown = 0;
    for (const auto& [candidate, score] : ranking) {
      if (shown >= topk) break;
      if (friends.count(candidate) > 0) continue;  // skip existing friends
      table.AddRow({bepi::Table::Int(candidate), bepi::Table::Num(score, 6),
                    "no"});
      ++shown;
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
