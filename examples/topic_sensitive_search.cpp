// Topic-sensitive ranking with Personalized PageRank: the multi-seed
// generalization of RWR (paper Section 2.1: "RWR is a special case of
// Personalized PageRank"). Builds a citation-style graph with topical
// clusters, preprocesses once with BePI, then ranks w.r.t. *topics* —
// personalization vectors spreading restart mass over several seed nodes.
// Also demonstrates shipping the preprocessed model via Save/Load.
//
// Usage: topic_sensitive_search [--topics=6] [--docs=400] [--seed=11]
#include <cstdio>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/bepi.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace bepi;
  Flags flags = Flags::Parse(argc, argv);
  const index_t topics = flags.GetInt("topics", 6);
  const index_t docs_per_topic = flags.GetInt("docs", 400);
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 11)));

  // Documents cite mostly within their topic, occasionally across.
  PlantedPartitionOptions gen;
  gen.num_communities = topics;
  gen.community_size = docs_per_topic;
  gen.p_intra = 0.03;
  gen.p_inter = 0.0005;
  auto graph = GeneratePlantedPartition(gen, &rng);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const index_t n = graph->num_nodes();
  std::printf("Corpus graph: %lld documents in %lld topics, %lld citations\n",
              static_cast<long long>(n), static_cast<long long>(topics),
              static_cast<long long>(graph->num_edges()));

  // Preprocess once, persist the model, and serve queries from the loaded
  // copy — the produce/ship/serve split a ranking service would use.
  BepiOptions options;
  BepiSolver builder(options);
  if (!builder.Preprocess(*graph).ok()) {
    std::fprintf(stderr, "preprocess failed\n");
    return 1;
  }
  const std::string model_path = "/tmp/bepi_topic_model.txt";
  if (!builder.SaveFile(model_path).ok()) {
    std::fprintf(stderr, "model save failed\n");
    return 1;
  }
  auto served = BepiSolver::LoadFile(model_path);
  if (!served.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 served.status().ToString().c_str());
    return 1;
  }
  std::printf("Model: %.2f MB preprocessed, persisted to %s\n\n",
              static_cast<double>(builder.PreprocessedBytes()) / (1 << 20),
              model_path.c_str());

  // A "topic" personalization: restart mass spread over 5 random
  // representative documents of the topic.
  for (index_t topic : {static_cast<index_t>(0), topics / 2}) {
    std::vector<std::pair<index_t, real_t>> seeds;
    for (int i = 0; i < 5; ++i) {
      seeds.push_back({topic * docs_per_topic +
                           rng.UniformIndex(0, docs_per_topic - 1),
                       1.0});
    }
    auto q = PersonalizationVector(n, seeds);
    if (!q.ok()) return 1;
    QueryStats stats;
    auto scores = served->QueryVector(*q, &stats);
    if (!scores.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   scores.status().ToString().c_str());
      return 1;
    }
    std::printf("Topic %lld ranking (%.2f ms, %lld inner iterations):\n",
                static_cast<long long>(topic), stats.seconds * 1e3,
                static_cast<long long>(stats.iterations));
    Table table({"rank", "document", "topic", "score", "is seed?"});
    auto top = TopK(*scores, 8);
    for (std::size_t i = 0; i < top.size(); ++i) {
      const index_t doc = top[i].first;
      bool is_seed = false;
      for (const auto& [s, w] : seeds) {
        if (s == doc) is_seed = true;
      }
      table.AddRow({Table::Int(static_cast<long long>(i) + 1),
                    Table::Int(doc), Table::Int(doc / docs_per_topic),
                    Table::Num(top[i].second, 6), is_seed ? "yes" : "no"});
    }
    table.Print();
    // Quality check: the top results should come from the query topic.
    index_t in_topic = 0;
    for (const auto& [doc, score] : top) {
      if (doc / docs_per_topic == topic) ++in_topic;
    }
    std::printf("  %lld of %zu top documents are in the queried topic\n\n",
                static_cast<long long>(in_topic), top.size());
  }
  return 0;
}
