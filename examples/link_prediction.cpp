// Link prediction with RWR scores (paper Section 1: one of RWR's classic
// applications, cf. Backstrom & Leskovec [3]). Hides a random sample of
// edges, scores hidden pairs vs. random non-edges with RWR from the source
// node, and reports AUC plus precision against a common-neighbors baseline.
//
// Usage: link_prediction [--nodes=5000] [--edges=40000] [--test_edges=300]
//                        [--seed=7]
#include <cstdio>
#include <unordered_set>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/bepi.hpp"
#include "graph/generators.hpp"

namespace {

std::uint64_t PairKey(bepi::index_t a, bepi::index_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

/// Number of common out-neighbors of a and b (the classic baseline).
bepi::index_t CommonNeighbors(const bepi::Graph& g, bepi::index_t a,
                              bepi::index_t b) {
  const auto& adj = g.adjacency();
  std::unordered_set<bepi::index_t> na;
  for (bepi::index_t p = adj.row_ptr()[static_cast<std::size_t>(a)];
       p < adj.row_ptr()[static_cast<std::size_t>(a) + 1]; ++p) {
    na.insert(adj.col_idx()[static_cast<std::size_t>(p)]);
  }
  bepi::index_t count = 0;
  for (bepi::index_t p = adj.row_ptr()[static_cast<std::size_t>(b)];
       p < adj.row_ptr()[static_cast<std::size_t>(b) + 1]; ++p) {
    if (na.count(adj.col_idx()[static_cast<std::size_t>(p)]) > 0) ++count;
  }
  return count;
}

/// AUC from paired positive/negative scores.
double Auc(const std::vector<double>& pos, const std::vector<double>& neg) {
  double wins = 0.0;
  for (double p : pos) {
    for (double n : neg) {
      if (p > n) {
        wins += 1.0;
      } else if (p == n) {
        wins += 0.5;
      }
    }
  }
  return wins / (static_cast<double>(pos.size()) *
                 static_cast<double>(neg.size()));
}

}  // namespace

int main(int argc, char** argv) {
  bepi::Flags flags = bepi::Flags::Parse(argc, argv);
  const bepi::index_t nodes = flags.GetInt("nodes", 5000);
  const bepi::index_t edges = flags.GetInt("edges", 40000);
  const bepi::index_t test_edges = flags.GetInt("test_edges", 300);
  bepi::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 7)));

  bepi::RmatOptions gen;
  gen.num_nodes = nodes;
  gen.num_edges = edges;
  auto full = bepi::GenerateRmat(gen, &rng);
  if (!full.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }

  // Hide a sample of edges (the positives).
  std::vector<bepi::Edge> all_edges = full->EdgeList();
  rng.Shuffle(&all_edges);
  std::vector<bepi::Edge> hidden(all_edges.begin(),
                                 all_edges.begin() + test_edges);
  std::vector<bepi::Edge> visible(all_edges.begin() + test_edges,
                                  all_edges.end());
  auto graph_result = bepi::Graph::FromEdges(nodes, visible);
  if (!graph_result.ok()) return 1;
  bepi::Graph graph = std::move(graph_result).value();

  std::unordered_set<std::uint64_t> edge_set;
  for (const bepi::Edge& e : all_edges) edge_set.insert(PairKey(e.src, e.dst));

  // Sample negatives: random non-edges with the same sources as positives
  // (so each comparison is within one source's score scale).
  std::vector<bepi::Edge> negatives;
  for (const bepi::Edge& e : hidden) {
    for (;;) {
      const bepi::index_t dst = rng.UniformIndex(0, nodes - 1);
      if (dst != e.src && edge_set.count(PairKey(e.src, dst)) == 0) {
        negatives.push_back({e.src, dst});
        break;
      }
    }
  }

  std::printf("Training graph: %lld nodes, %lld edges "
              "(%lld held-out positives)\n",
              static_cast<long long>(nodes),
              static_cast<long long>(graph.num_edges()),
              static_cast<long long>(test_edges));

  bepi::BepiOptions options;
  bepi::BepiSolver solver(options);
  bepi::Status status = solver.Preprocess(graph);
  if (!status.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("BePI preprocessing took %.2f s\n", solver.preprocess_seconds());

  // Score positives and negatives. Queries for the same source node are
  // cached: one RWR query serves every pair with that source.
  std::vector<double> rwr_pos, rwr_neg, cn_pos, cn_neg;
  bepi::index_t cached_seed = -1;
  bepi::Vector cached_scores;
  auto rwr_score = [&](bepi::index_t src, bepi::index_t dst) -> double {
    if (src != cached_seed) {
      auto r = solver.Query(src);
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
      cached_scores = std::move(r).value();
      cached_seed = src;
    }
    return cached_scores[static_cast<std::size_t>(dst)];
  };
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    rwr_pos.push_back(rwr_score(hidden[i].src, hidden[i].dst));
    rwr_neg.push_back(rwr_score(negatives[i].src, negatives[i].dst));
    cn_pos.push_back(static_cast<double>(
        CommonNeighbors(graph, hidden[i].src, hidden[i].dst)));
    cn_neg.push_back(static_cast<double>(
        CommonNeighbors(graph, negatives[i].src, negatives[i].dst)));
  }

  bepi::Table table({"method", "AUC"});
  table.AddRow({"RWR (BePI)", bepi::Table::Num(Auc(rwr_pos, rwr_neg))});
  table.AddRow({"Common neighbors", bepi::Table::Num(Auc(cn_pos, cn_neg))});
  table.AddRow({"Random guess", "0.500"});
  std::printf("\nLink prediction quality (hidden edges vs random non-edges):\n");
  table.Print();
  return 0;
}
