// Quickstart: build a small graph, preprocess it with BePI, and query RWR
// scores. Reproduces the worked example of Figure 2 in the paper (seed u1,
// personalized ranking over 8 nodes).
//
// Usage: quickstart [--restart_prob=0.05] [--tolerance=1e-9]
#include <cstdio>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/bepi.hpp"

namespace {

bepi::Graph BuildFigure2Graph() {
  // The undirected 8-node graph from Figure 2 (u1..u8 -> ids 0..7).
  const std::vector<std::pair<bepi::index_t, bepi::index_t>> undirected = {
      {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 4},
      {3, 7}, {4, 7}, {4, 5}, {5, 6}, {5, 7},
  };
  std::vector<bepi::Edge> edges;
  for (auto [u, v] : undirected) {
    edges.push_back({u, v});
    edges.push_back({v, u});
  }
  auto g = bepi::Graph::FromEdges(8, edges);
  if (!g.ok()) {
    std::fprintf(stderr, "graph construction failed: %s\n",
                 g.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(g).value();
}

}  // namespace

int main(int argc, char** argv) {
  bepi::Flags flags = bepi::Flags::Parse(argc, argv);

  bepi::Graph graph = BuildFigure2Graph();
  std::printf("Graph: %lld nodes, %lld directed edges\n\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()));

  // 1. Configure BePI. The defaults follow the paper: c = 0.05,
  //    epsilon = 1e-9, ILU(0)-preconditioned GMRES on the Schur complement.
  bepi::BepiOptions options;
  options.restart_prob = flags.GetDouble("restart_prob", 0.05);
  options.tolerance = flags.GetDouble("tolerance", 1e-9);
  options.hub_ratio = 0.25;  // small graph: any reasonable k works

  // 2. Preprocess once.
  bepi::BepiSolver solver(options);
  bepi::Status status = solver.Preprocess(graph);
  if (!status.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Preprocessed in %.3f ms (n1=%lld spokes, n2=%lld hubs, "
              "n3=%lld deadends, |S|=%lld)\n\n",
              solver.preprocess_seconds() * 1e3,
              static_cast<long long>(solver.info().n1),
              static_cast<long long>(solver.info().n2),
              static_cast<long long>(solver.info().n3),
              static_cast<long long>(solver.info().schur_nnz));

  // 3. Query: RWR scores w.r.t. u1 (node 0), as in Figure 2.
  const bepi::index_t seed = 0;
  bepi::QueryStats stats;
  auto scores = solver.Query(seed, &stats);
  if (!scores.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }
  std::printf("RWR scores w.r.t. u1 (%.3f ms, %lld GMRES iterations):\n",
              stats.seconds * 1e3, static_cast<long long>(stats.iterations));

  auto ranking = bepi::TopK(*scores, graph.num_nodes());
  bepi::Table table({"node", "score", "rank"});
  std::vector<bepi::index_t> rank_of(static_cast<std::size_t>(graph.num_nodes()));
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    rank_of[static_cast<std::size_t>(ranking[i].first)] =
        static_cast<bepi::index_t>(i) + 1;
  }
  for (bepi::index_t u = 0; u < graph.num_nodes(); ++u) {
    std::string label = "u";
    label += std::to_string(u + 1);
    table.AddRow({std::move(label),
                  bepi::Table::Num((*scores)[static_cast<std::size_t>(u)]),
                  bepi::Table::Int(rank_of[static_cast<std::size_t>(u)])});
  }
  table.Print();

  // 4. The paper's recommendation argument: u8 outranks u6 for u1.
  std::printf("\nRecommendation for u1: u%lld (u8 beats u6: %.4f > %.4f)\n",
              static_cast<long long>(bepi::TopK(*scores, 1, seed)[0].first + 1),
              (*scores)[7], (*scores)[5]);
  return 0;
}
