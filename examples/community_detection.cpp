// Local community detection by RWR sweep cut (paper Section 1; Andersen,
// Chung & Lang [1] and Gleich & Seshadhri [18] use exactly this recipe
// with PageRank/RWR vectors). Plants communities in a synthetic graph,
// runs one BePI query from a seed inside a community, orders nodes by
// degree-normalized RWR score, and returns the sweep prefix with the
// lowest conductance.
//
// Usage: community_detection [--communities=8] [--size=150]
//                            [--p_in=0.12] [--inter_edges=4] [--seed=3]
#include <algorithm>
#include <cstdio>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/bepi.hpp"
#include "graph/components.hpp"

namespace {

/// Conductance of a node set S in the symmetrized graph: cut(S) /
/// min(vol(S), vol(V \ S)).
double Conductance(const bepi::CsrMatrix& sym, const std::vector<bool>& in_set) {
  double cut = 0.0, vol_in = 0.0, vol_total = 0.0;
  for (bepi::index_t u = 0; u < sym.rows(); ++u) {
    const double deg = static_cast<double>(sym.RowNnz(u));
    vol_total += deg;
    if (in_set[static_cast<std::size_t>(u)]) vol_in += deg;
    for (bepi::index_t p = sym.row_ptr()[static_cast<std::size_t>(u)];
         p < sym.row_ptr()[static_cast<std::size_t>(u) + 1]; ++p) {
      const bepi::index_t v = sym.col_idx()[static_cast<std::size_t>(p)];
      if (in_set[static_cast<std::size_t>(u)] !=
          in_set[static_cast<std::size_t>(v)]) {
        cut += 1.0;
      }
    }
  }
  const double denom = std::min(vol_in, vol_total - vol_in);
  return denom > 0.0 ? cut / denom : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bepi::Flags flags = bepi::Flags::Parse(argc, argv);
  const bepi::index_t communities = flags.GetInt("communities", 8);
  const bepi::index_t size = flags.GetInt("size", 150);
  const double p_in = flags.GetDouble("p_in", 0.12);
  const bepi::index_t inter_edges = flags.GetInt("inter_edges", 4);
  bepi::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 3)));

  // Planted-partition graph: dense blocks, sparse random bridges.
  const bepi::index_t n = communities * size;
  std::vector<bepi::Edge> edges;
  for (bepi::index_t c = 0; c < communities; ++c) {
    const bepi::index_t base = c * size;
    for (bepi::index_t u = 0; u < size; ++u) {
      for (bepi::index_t v = 0; v < size; ++v) {
        if (u != v && rng.NextDouble() < p_in) {
          edges.push_back({base + u, base + v});
        }
      }
    }
  }
  for (bepi::index_t c = 0; c < communities; ++c) {
    for (bepi::index_t i = 0; i < inter_edges; ++i) {
      const bepi::index_t u = c * size + rng.UniformIndex(0, size - 1);
      bepi::index_t v = rng.UniformIndex(0, n - 1);
      if (v / size == c) v = (v + size) % n;
      edges.push_back({u, v});
      edges.push_back({v, u});
    }
  }
  auto graph_result = bepi::Graph::FromEdges(n, edges);
  if (!graph_result.ok()) return 1;
  bepi::Graph graph = std::move(graph_result).value();
  std::printf("Planted-partition graph: %lld nodes, %lld edges, "
              "%lld communities of %lld\n",
              static_cast<long long>(n),
              static_cast<long long>(graph.num_edges()),
              static_cast<long long>(communities),
              static_cast<long long>(size));

  bepi::BepiOptions options;
  bepi::BepiSolver solver(options);
  if (!solver.Preprocess(graph).ok()) {
    std::fprintf(stderr, "preprocess failed\n");
    return 1;
  }

  const bepi::index_t seed = rng.UniformIndex(0, n - 1);
  const bepi::index_t true_community = seed / size;
  auto scores = solver.Query(seed);
  if (!scores.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }

  // Sweep over nodes by degree-normalized score.
  const bepi::CsrMatrix sym = bepi::SymmetrizePattern(graph.adjacency());
  std::vector<bepi::index_t> order(static_cast<std::size_t>(n));
  for (bepi::index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](bepi::index_t a, bepi::index_t b) {
    const double sa = (*scores)[static_cast<std::size_t>(a)] /
                      std::max<double>(1.0, static_cast<double>(sym.RowNnz(a)));
    const double sb = (*scores)[static_cast<std::size_t>(b)] /
                      std::max<double>(1.0, static_cast<double>(sym.RowNnz(b)));
    return sa > sb;
  });

  std::vector<bool> in_set(static_cast<std::size_t>(n), false);
  double best_conductance = 2.0;
  bepi::index_t best_prefix = 0;
  const bepi::index_t max_prefix = std::min<bepi::index_t>(n / 2, 4 * size);
  for (bepi::index_t prefix = 1; prefix <= max_prefix; ++prefix) {
    in_set[static_cast<std::size_t>(order[static_cast<std::size_t>(prefix - 1)])] =
        true;
    // Recomputing conductance per step keeps this example simple (O(m)
    // per prefix); a production sweep maintains cut/volume incrementally.
    const double phi = Conductance(sym, in_set);
    if (phi < best_conductance) {
      best_conductance = phi;
      best_prefix = prefix;
    }
  }

  // Evaluate against the planted community.
  bepi::index_t correct = 0;
  for (bepi::index_t i = 0; i < best_prefix; ++i) {
    if (order[static_cast<std::size_t>(i)] / size == true_community) ++correct;
  }
  const double precision =
      static_cast<double>(correct) / static_cast<double>(best_prefix);
  const double recall =
      static_cast<double>(correct) / static_cast<double>(size);

  bepi::Table table({"metric", "value"});
  table.AddRow({"seed node", bepi::Table::Int(seed)});
  table.AddRow({"planted community", bepi::Table::Int(true_community)});
  table.AddRow({"best sweep size", bepi::Table::Int(best_prefix)});
  table.AddRow({"conductance", bepi::Table::Num(best_conductance)});
  table.AddRow({"precision", bepi::Table::Num(precision)});
  table.AddRow({"recall", bepi::Table::Num(recall)});
  std::printf("\nLocal community found by the RWR sweep cut:\n");
  table.Print();
  return 0;
}
