// bepi_cli — command-line front end for the BePI library.
//
// Commands:
//   generate   --out=graph.txt --dataset=Slashdot-sim [--scale=1.0]
//              or --nodes=N --edges=M [--deadends=F] [--seed=S]
//   stats      --graph=graph.txt
//   preprocess --graph=graph.txt --model=model.txt
//              [--mode=bepi|bepi-s|bepi-b] [--k=0.2] [--c=0.05]
//   query      --model=model.txt --seed-node=ID [--topk=10]
//              or --engine=mc --graph=graph.txt --seed-node=ID (walk-based)
//   rank       --graph=graph.txt --seed-node=ID [--topk=10]  (one-shot)
//   crosscheck --graph=graph.txt  (exact vs Monte-Carlo oracle)
//   verify-model --model=model.txt   (per-section integrity fsck)
//
// Example:
//   bepi_cli generate --out=/tmp/g.txt --dataset=Slashdot-sim
//   bepi_cli preprocess --graph=/tmp/g.txt --model=/tmp/m.txt
//   bepi_cli query --model=/tmp/m.txt --seed-node=17 --topk=5
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/cancel.hpp"
#include "common/faultinject.hpp"
#include "common/fileio.hpp"
#include "common/flags.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/promtext.hpp"
#include "common/sections.hpp"
#include "common/shutdown.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "core/batch.hpp"
#include "core/bepi.hpp"
#include "core/checkpoint.hpp"
#include "core/datasets.hpp"
#include "engine/mc/mc.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "server/server.hpp"
#include "sparse/kernel.hpp"

namespace {

using namespace bepi;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// One entry per subcommand; `help <name>` prints `text` verbatim and
/// Usage() prints the one-line `synopsis` of every entry. tools/
/// check_docs.sh cross-checks docs/OPERATIONS.md against this output, so
/// a flag documented here must exist and vice versa.
struct CommandHelp {
  const char* name;
  const char* synopsis;
  const char* text;
};

const CommandHelp kCommands[] = {
    {"generate",
     "generate   --out=FILE (--dataset=NAME [--scale=X] |\n"
     "           --nodes=N --edges=M [--deadends=F]) [--seed=S]",
     "bepi_cli generate — synthesize an edge-list graph file\n"
     "  --out=FILE       destination edge-list path (required)\n"
     "  --dataset=NAME   named dataset profile (see core/datasets); use\n"
     "                   instead of --nodes/--edges\n"
     "  --scale=X        scale a named dataset by X (default 1.0)\n"
     "  --nodes=N        R-MAT node count (default 10000)\n"
     "  --edges=M        R-MAT edge count (default 100000)\n"
     "  --deadends=F     fraction of nodes made deadends (default 0)\n"
     "  --seed=S         RNG seed (default 1)\n"
     "example:\n"
     "  bepi_cli generate --out=/tmp/g.txt --dataset=Slashdot-sim\n"},
    {"stats",
     "stats      --graph=FILE",
     "bepi_cli stats — structural statistics of an edge-list graph\n"
     "  --graph=FILE     edge-list path (required)\n"
     "prints node/edge/deadend counts and weak/strong component sizes.\n"
     "example:\n"
     "  bepi_cli stats --graph=/tmp/g.txt\n"},
    {"preprocess",
     "preprocess --graph=FILE --model=FILE [--mode=bepi|bepi-s|bepi-b]\n"
     "           [--k=0.2] [--c=0.05] [--tol=1e-9] [--checkpoint-dir=DIR]",
     "bepi_cli preprocess — run BePI preprocessing, save a model file\n"
     "  --graph=FILE          input edge list (required)\n"
     "  --model=FILE          output model path, format v3 (required)\n"
     "  --mode=MODE           bepi (ILU(0)+GMRES, default), bepi-s, bepi-b\n"
     "  --k=X                 hub ratio; 0 = the mode's paper default\n"
     "  --c=X                 restart probability (default 0.05)\n"
     "  --tol=X               solver tolerance (default 1e-9)\n"
     "  --checkpoint-dir=DIR  kill-safe preprocessing: rerun the same\n"
     "                        command after a crash to resume from the\n"
     "                        last durable stage\n"
     "example:\n"
     "  bepi_cli preprocess --graph=/tmp/g.txt --model=/tmp/m.txt\n"},
    {"query",
     "query      --model=FILE (--seed-node=ID | --seeds-file=FILE)\n"
     "           [--topk=10] [--stats --num-queries=N]\n"
     "           [--engine=mc --graph=FILE --walks=N --eps=E]",
     "bepi_cli query — answer RWR queries against a saved model\n"
     "  --model=FILE       model file from `preprocess` (required unless\n"
     "                     --engine=mc)\n"
     "  --seed-node=ID     single seed: print its top-k ranking\n"
     "  --seeds-file=FILE  batch mode: one seed id per line ('#' comments\n"
     "                     and blank lines ignored), answered concurrently\n"
     "                     over the thread pool (--threads) with reused\n"
     "                     per-slot solver workspaces\n"
     "  --topk=K           ranking length (default 10)\n"
     "  --top-k=K          top-k QUERY mode: answer with the k best nodes\n"
     "                     via pruned back-substitution instead of a full\n"
     "                     vector. Exact by default (scores byte-identical\n"
     "                     to sorting a --dump-scores solve); add --eps=E\n"
     "                     for the bounded-error mode (the Schur solve\n"
     "                     stops at E and the answer carries an explicit\n"
     "                     per-score error bound)\n"
     "  --topk-via=V       pruned (default) or dense: dense forces the\n"
     "                     full-solve + sort baseline — CI cmps its\n"
     "                     --dump-topk file against the pruned one\n"
     "  --dump-topk=FILE   write the ranking as 'node score' lines at full\n"
     "                     precision (byte-comparable across --topk-via,\n"
     "                     --kernel and --threads)\n"
     "  --warm-start=mc    seed the Schur solve from a cheap Monte-Carlo\n"
     "                     estimate (needs --graph; off by default — a\n"
     "                     warm start changes the iterate sequence, so\n"
     "                     bit-identity only holds on the default path)\n"
     "  --dump-scores=FILE single-seed mode: also write every node's score,\n"
     "                     one per line in node order, at full precision\n"
     "                     (for bit-identity checks across --kernel and\n"
     "                     --threads settings)\n"
     "  --stats            latency percentiles over --num-queries\n"
     "                     consecutive seeds instead of a ranking\n"
     "  --num-queries=N    sample size for --stats (default 100)\n"
     "  --engine=NAME      exact (default; the model's solver chain) or mc\n"
     "                     (Monte-Carlo walks on the raw graph — needs\n"
     "                     --graph, not --model; anytime semantics: walks\n"
     "                     until --eps, the walk budget or --deadline-ms,\n"
     "                     then answers with a confidence bound)\n"
     "  --graph=FILE       edge list for the walk engine. With --engine=mc\n"
     "                     it replaces the model; with the exact engine it\n"
     "                     additionally arms the Monte-Carlo terminal\n"
     "                     fallback stage of the degradation chain\n"
     "  --walks=N          walk budget (default 100000)\n"
     "  --eps=E            anytime target: stop when the per-coordinate\n"
     "                     Hoeffding half-width reaches E (default 0 = run\n"
     "                     the whole budget)\n"
     "  --delta=D          confidence level 1-D for all bounds (default\n"
     "                     0.01)\n"
     "  --walk-seed=S      base seed of the per-walk RNG streams (default\n"
     "                     20170514); results are bit-identical for a\n"
     "                     fixed (seed, walks) at any --threads\n"
     "  --deadline-ms=X    mc engine: wall-clock budget; on expiry the\n"
     "                     current estimate is returned with its honest\n"
     "                     (wider) bound (default 0 = none)\n"
     "  --c=X              mc engine: restart probability (default 0.05)\n"
     "examples:\n"
     "  bepi_cli query --model=/tmp/m.txt --seed-node=17 --topk=5\n"
     "  bepi_cli query --model=/tmp/m.txt --seeds-file=seeds.txt --threads=8\n"
     "  bepi_cli query --engine=mc --graph=/tmp/g.txt --seed-node=17 \\\n"
     "    --walks=200000 --eps=0.002\n"},
    {"crosscheck",
     "crosscheck --graph=FILE [--seeds=3] [--walks=200000] [--delta=0.001]",
     "bepi_cli crosscheck — verify the linear-algebra engines against the\n"
     "Monte-Carlo walk oracle. Preprocesses --graph in-process, answers\n"
     "each check seed through the solver chain (whatever stage of the\n"
     "degradation chain survives --fault-inject) AND through independent\n"
     "walks, then fails loudly if any node's scores disagree by more than\n"
     "the combined confidence bound — a self-verification layer for CI.\n"
     "  --graph=FILE     input edge list (required)\n"
     "  --seeds=N        number of deterministic check seeds (default 3)\n"
     "  --seed-node=ID   check one specific seed instead\n"
     "  --query-eps=E    run the solver side in bounded-error mode: the\n"
     "                   Schur solve stops at E and the reported per-score\n"
     "                   error bound joins the allowed band — so this\n"
     "                   verifies the eps-mode bound itself against the\n"
     "                   oracle (default 0 = full-tolerance solve)\n"
     "  --walks=N        oracle walk budget per seed (default 200000)\n"
     "  --delta=D        oracle confidence level 1-D (default 0.001)\n"
     "  --walk-seed=S    oracle RNG base seed (default 987654321; kept\n"
     "                   distinct from the fallback stage's default so a\n"
     "                   chain that bottoms out in MC is still checked\n"
     "                   against independent randomness)\n"
     "also accepts the preprocess options --mode/--k/--c/--tol.\n"
     "exit status: 0 = every engine agreed within bounds, 1 = violation\n"
     "(prints the worst offending node, diff and allowed bound).\n"
     "example:\n"
     "  bepi_cli crosscheck --graph=/tmp/g.txt --seeds=5\n"
     "  bepi_cli crosscheck --graph=/tmp/g.txt \\\n"
     "    --fault-inject=ilu0.factor,gmres.stagnate,bicgstab.breakdown\n"},
    {"rank",
     "rank       --graph=FILE --seed-node=ID [--topk=10]",
     "bepi_cli rank — one-shot preprocess + query (no model file)\n"
     "  --graph=FILE     input edge list (required)\n"
     "  --seed-node=ID   seed node (required)\n"
     "  --topk=K         ranking length (default 10)\n"
     "also accepts the preprocess options --mode/--k/--c/--tol.\n"
     "example:\n"
     "  bepi_cli rank --graph=/tmp/g.txt --seed-node=17\n"},
    {"serve",
     "serve      --model=FILE [--socket=PATH] [--slots=2] [--max-queue=64]\n"
     "           [--default-deadline-ms=0] [--drain-ms=5000]",
     "bepi_cli serve — long-running query server over a saved model\n"
     "speaks one JSON object per line on stdin/stdout (default) or over a\n"
     "Unix-domain socket; see docs/OPERATIONS.md for the protocol.\n"
     "  --model=FILE             model file from `preprocess` (required)\n"
     "  --socket=PATH            serve a Unix-domain socket instead of\n"
     "                           stdin/stdout (concurrent connections)\n"
     "  --slots=N                worker slots answering queries (default 2)\n"
     "  --max-queue=N            admission queue bound; a full queue sheds\n"
     "                           load with an `overloaded` response and a\n"
     "                           retry_after_ms hint (default 64)\n"
     "  --default-deadline-ms=X  deadline for requests without their own\n"
     "                           deadline_ms; 0 = none (default 0)\n"
     "  --drain-ms=X             graceful-drain budget after SIGTERM/SIGINT\n"
     "                           or EOF before in-flight work is cancelled\n"
     "                           cooperatively (default 5000)\n"
     "  --watchdog-ms=X          watchdog sampling interval (default 250)\n"
     "  --wedge-ms=X             a worker busy on one request longer than\n"
     "                           this is cancelled and health degrades\n"
     "                           (default 30000)\n"
     "  --max-line-bytes=N       inbound request-line cap (default 1MiB)\n"
     "  --write-timeout-ms=X     drop a socket client that does not drain\n"
     "                           its responses in time (default 5000)\n"
     "  --max-conns=N            concurrent socket connection cap; above\n"
     "                           it a connection gets one `overloaded`\n"
     "                           line and is closed (default 64)\n"
     "  --graph=FILE             arm the Monte-Carlo terminal fallback:\n"
     "                           when every linear-algebra stage fails, a\n"
     "                           query is answered by walks on this raw\n"
     "                           edge list with the confidence half-width\n"
     "                           reported in the `residual` field and\n"
     "                           \"stage\":\"mc\" in the response\n"
     "  --walks=N                fallback walk budget (default 200000)\n"
     "  --delta=D                fallback confidence level 1-D (default\n"
     "                           0.01)\n"
     "  --walk-seed=S            fallback walk RNG base seed (default\n"
     "                           20170514)\n"
     "  --slow-ms=X              slow-query log: a query whose wall time\n"
     "                           (admission to response write) exceeds X\n"
     "                           logs one structured line with its full\n"
     "                           timing breakdown and pins its request_id\n"
     "                           to the latency histogram as the exemplar\n"
     "                           (default 0 = disabled)\n"
     "  --flight-dump=PATH       where the always-on flight recorder is\n"
     "                           dumped (Perfetto-loadable JSON) on a\n"
     "                           watchdog trip or fatal-signal drain\n"
     "                           (default bepi-flightrec.json; empty\n"
     "                           disables auto-dumps — the `dump` verb\n"
     "                           still works)\n"
     "  --cache-mb=N             hot-seed score cache budget in MiB; a\n"
     "                           repeated (model, seed) query is answered\n"
     "                           from memory, byte-identical to a cold\n"
     "                           solve, with \"stage\":\"cache\" in the\n"
     "                           response (default 0 = disabled)\n"
     "  --batch-max=K            most queries one worker slot coalesces\n"
     "                           into a single blocked Schur solve that\n"
     "                           streams the matrix once for all of them\n"
     "                           (default 8; 1 disables coalescing)\n"
     "  --batch-window-ms=X      how long a slot that popped one query\n"
     "                           waits for more to coalesce with it\n"
     "                           (default 0 = only already-queued backlog\n"
     "                           is coalesced, no added latency)\n"
     "example:\n"
     "  echo '{\"op\":\"query\",\"seed\":17}' | \\\n"
     "    bepi_cli serve --model=/tmp/m.txt\n"},
    {"metrics-export",
     "metrics-export --snapshot=FILE [--out=FILE]",
     "bepi_cli metrics-export — render a --metrics-out snapshot file as\n"
     "Prometheus text exposition (format 0.0.4)\n"
     "  --snapshot=FILE  metrics snapshot JSON written by --metrics-out\n"
     "                   (required)\n"
     "  --out=FILE       destination path; stdout when omitted\n"
     "counters and gauges become `bepi_<name>` series; histograms become\n"
     "cumulative `le` bucket series with _sum/_count (and the recorded\n"
     "exemplar, when one exists). A live server answers the `metrics`\n"
     "verb with the same text; this command covers one-shot runs.\n"
     "example:\n"
     "  bepi_cli query --model=/tmp/m.txt --seed-node=3 \\\n"
     "    --metrics-out=/tmp/metrics.json\n"
     "  bepi_cli metrics-export --snapshot=/tmp/metrics.json\n"},
    {"verify-model",
     "verify-model --model=FILE",
     "bepi_cli verify-model — per-section integrity fsck of a model file\n"
     "  --model=FILE     model path (required)\n"
     "checks every v3 section against its stored CRC32C; pre-v3 models\n"
     "get a full load check instead. Also loads the model and reports\n"
     "where the ILU(0) kernel level schedules came from — `model\n"
     "(validated)` for a healthy kernel section vs `rebuilt (...)` for an\n"
     "absent or stale one — so operators can tell the two apart.\n"
     "example:\n"
     "  bepi_cli verify-model --model=/tmp/m.txt\n"},
    {"help",
     "help       [command]",
     "bepi_cli help — print usage, or detailed help for one command\n"
     "example:\n"
     "  bepi_cli help query\n"},
};

const char kGlobalFlagsHelp[] =
    "global flags:\n"
    "  --threads=N           worker threads for parallel kernels and batch\n"
    "                        queries; 1 = serial, default = BEPI_THREADS or\n"
    "                        all hardware threads. Results are bit-identical\n"
    "                        at any thread count.\n"
    "  --kernel=MODE         query-kernel index path: auto (default;\n"
    "                        compact 32-bit indices when the model fits),\n"
    "                        wide (64-bit), compact (force; falls back to\n"
    "                        wide if the model does not fit). Also settable\n"
    "                        via BEPI_KERNEL. Scores are bit-identical on\n"
    "                        every path.\n"
    "  --no-fallbacks        disable the solver degradation chain\n"
    "  --fault-inject=SPEC   arm fault sites, e.g.\n"
    "                        ilu0.factor,gmres.stagnate:0:-1\n"
    "                        (SITE[:skip[:count]] or SITE@prob[@seed])\n"
    "  --metrics-out=FILE    enable metrics, write a JSON snapshot of all\n"
    "                        counters/gauges/histograms on exit\n"
    "  --trace-out=FILE      record trace spans, write Chrome trace-event\n"
    "                        JSON on exit (load in ui.perfetto.dev)\n"
    "  --log-level=LEVEL     debug|info|warning|error (default info;\n"
    "                        also settable via BEPI_LOG_LEVEL)\n";

/// Flag vocabulary per subcommand (global flags appended to each), fed to
/// Flags::Validate so an unknown or malformed flag fails fast naming the
/// offender instead of being silently ignored.
std::vector<FlagSpec> WithGlobalFlags(std::vector<FlagSpec> specs) {
  static const FlagSpec kGlobals[] = {
      {"threads", FlagType::kInt},
      {"kernel", FlagType::kString},
      {"no-fallbacks", FlagType::kBool},
      {"fault-inject", FlagType::kString},
      {"metrics-out", FlagType::kString},
      {"trace-out", FlagType::kString},
      {"log-level", FlagType::kString},
  };
  specs.insert(specs.end(), std::begin(kGlobals), std::end(kGlobals));
  return specs;
}

const std::map<std::string, std::vector<FlagSpec>>& CommandFlagSpecs() {
  static const auto* specs =
      new std::map<std::string, std::vector<FlagSpec>>{
          {"generate", WithGlobalFlags({{"out", FlagType::kString},
                                        {"dataset", FlagType::kString},
                                        {"scale", FlagType::kDouble},
                                        {"nodes", FlagType::kInt},
                                        {"edges", FlagType::kInt},
                                        {"deadends", FlagType::kDouble},
                                        {"seed", FlagType::kInt}})},
          {"stats", WithGlobalFlags({{"graph", FlagType::kString}})},
          {"preprocess",
           WithGlobalFlags({{"graph", FlagType::kString},
                            {"model", FlagType::kString},
                            {"mode", FlagType::kString},
                            {"k", FlagType::kDouble},
                            {"c", FlagType::kDouble},
                            {"tol", FlagType::kDouble},
                            {"checkpoint-dir", FlagType::kString}})},
          {"query", WithGlobalFlags({{"model", FlagType::kString},
                                     {"seed-node", FlagType::kInt},
                                     {"seeds-file", FlagType::kString},
                                     {"topk", FlagType::kInt},
                                     {"top-k", FlagType::kInt},
                                     {"topk-via", FlagType::kString},
                                     {"dump-topk", FlagType::kString},
                                     {"warm-start", FlagType::kString},
                                     {"dump-scores", FlagType::kString},
                                     {"stats", FlagType::kBool},
                                     {"num-queries", FlagType::kInt},
                                     {"engine", FlagType::kString},
                                     {"graph", FlagType::kString},
                                     {"walks", FlagType::kInt},
                                     {"eps", FlagType::kDouble},
                                     {"delta", FlagType::kDouble},
                                     {"walk-seed", FlagType::kInt},
                                     {"deadline-ms", FlagType::kDouble},
                                     {"c", FlagType::kDouble}})},
          {"crosscheck",
           WithGlobalFlags({{"graph", FlagType::kString},
                            {"seeds", FlagType::kInt},
                            {"seed-node", FlagType::kInt},
                            {"query-eps", FlagType::kDouble},
                            {"walks", FlagType::kInt},
                            {"delta", FlagType::kDouble},
                            {"walk-seed", FlagType::kInt},
                            {"mode", FlagType::kString},
                            {"k", FlagType::kDouble},
                            {"c", FlagType::kDouble},
                            {"tol", FlagType::kDouble}})},
          {"rank", WithGlobalFlags({{"graph", FlagType::kString},
                                    {"seed-node", FlagType::kInt},
                                    {"topk", FlagType::kInt},
                                    {"mode", FlagType::kString},
                                    {"k", FlagType::kDouble},
                                    {"c", FlagType::kDouble},
                                    {"tol", FlagType::kDouble}})},
          {"serve",
           WithGlobalFlags({{"model", FlagType::kString},
                            {"socket", FlagType::kString},
                            {"slots", FlagType::kInt},
                            {"max-queue", FlagType::kInt},
                            {"default-deadline-ms", FlagType::kDouble},
                            {"drain-ms", FlagType::kDouble},
                            {"watchdog-ms", FlagType::kDouble},
                            {"wedge-ms", FlagType::kDouble},
                            {"max-line-bytes", FlagType::kInt},
                            {"write-timeout-ms", FlagType::kDouble},
                            {"max-conns", FlagType::kInt},
                            {"graph", FlagType::kString},
                            {"walks", FlagType::kInt},
                            {"delta", FlagType::kDouble},
                            {"walk-seed", FlagType::kInt},
                            {"slow-ms", FlagType::kDouble},
                            {"flight-dump", FlagType::kString},
                            {"cache-mb", FlagType::kInt},
                            {"batch-max", FlagType::kInt},
                            {"batch-window-ms", FlagType::kDouble}})},
          {"metrics-export",
           WithGlobalFlags({{"snapshot", FlagType::kString},
                            {"out", FlagType::kString}})},
          {"verify-model", WithGlobalFlags({{"model", FlagType::kString}})},
          {"help", WithGlobalFlags({})},
      };
  return *specs;
}

/// Process-lifetime cancel token observing the SIGINT/SIGTERM flag: every
/// one-shot command threads it through its solve so a ^C winds down at
/// the next cooperative checkpoint (committing checkpoint stages, keeping
/// telemetry flushable) instead of dying mid-write.
const CancelToken* ShutdownToken() {
  static CancelToken* token = [] {
    auto* t = new CancelToken();
    t->LinkFlag(ShutdownFlag());
    return t;
  }();
  return token;
}

int Usage() {
  std::fprintf(stderr, "usage: bepi_cli <command> [flags]\n");
  for (const CommandHelp& cmd : kCommands) {
    std::fprintf(stderr, "  %s\n", cmd.synopsis);
  }
  std::fprintf(stderr, "%s", kGlobalFlagsHelp);
  std::fprintf(stderr, "run `bepi_cli help <command>` for details.\n");
  return 2;
}

int CmdHelp(const std::string& topic) {
  if (topic.empty()) return Usage();
  for (const CommandHelp& cmd : kCommands) {
    if (topic == cmd.name) {
      std::fprintf(stdout, "%s%s", cmd.text, kGlobalFlagsHelp);
      return 0;
    }
  }
  std::fprintf(stderr, "unknown command '%s'\n", topic.c_str());
  return Usage();
}

Result<Graph> LoadGraphFlag(const Flags& flags) {
  const std::string path = flags.GetString("graph", "");
  if (path.empty()) {
    return Status::InvalidArgument("--graph is required");
  }
  return ReadEdgeListFile(path);
}

BepiOptions OptionsFromFlags(const Flags& flags) {
  BepiOptions options;
  const std::string mode = flags.GetString("mode", "bepi");
  if (mode == "bepi-b") {
    options.mode = BepiMode::kBasic;
  } else if (mode == "bepi-s") {
    options.mode = BepiMode::kSparsified;
  } else {
    options.mode = BepiMode::kPreconditioned;
  }
  options.hub_ratio = flags.GetDouble("k", 0.0);
  options.restart_prob = flags.GetDouble("c", 0.05);
  options.tolerance = flags.GetDouble("tol", 1e-9);
  options.enable_fallbacks = !flags.Has("no-fallbacks");
  options.cancel = ShutdownToken();
  return options;
}

void PrintQueryReport(const QueryStats& stats) {
  if (stats.report.fallback_hops() > 0 ||
      stats.outcome != SolveOutcome::kConverged) {
    std::fprintf(stderr, "solver chain: %s (%lld fallback hop%s)\n",
                 stats.report.Summary().c_str(),
                 static_cast<long long>(stats.report.fallback_hops()),
                 stats.report.fallback_hops() == 1 ? "" : "s");
  }
}

void PrintTopK(const Vector& scores, index_t seed, index_t topk) {
  Table table({"rank", "node", "score"});
  auto ranking = TopK(scores, topk, seed);
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    table.AddRow({Table::Int(static_cast<long long>(i) + 1),
                  Table::Int(ranking[i].first),
                  Table::Num(ranking[i].second, 6)});
  }
  table.Print();
}

/// Shared --walks/--eps/--delta/--walk-seed/--c vocabulary of the walk
/// engine (query --engine=mc, crosscheck, and the serve/query fallback).
McOptions McOptionsFromFlags(const Flags& flags, std::uint64_t default_walks,
                             std::uint64_t default_seed) {
  McOptions options;
  options.restart_prob = flags.GetDouble("c", 0.05);
  options.walks =
      static_cast<std::uint64_t>(flags.GetInt(
          "walks", static_cast<index_t>(default_walks)));
  options.target_eps = flags.GetDouble("eps", 0.0);
  options.delta = flags.GetDouble("delta", 0.01);
  options.seed = static_cast<std::uint64_t>(
      flags.GetInt("walk-seed", static_cast<index_t>(default_seed)));
  return options;
}

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Usage();
  Result<Graph> g = Status::Internal("unreachable");
  if (flags.Has("dataset")) {
    auto spec = FindDataset(flags.GetString("dataset", ""));
    if (!spec.ok()) return Fail(spec.status());
    DatasetSpec scaled = ScaleSpec(*spec, flags.GetDouble("scale", 1.0));
    g = GenerateDataset(scaled);
  } else {
    Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 1)));
    RmatOptions options;
    options.num_nodes = flags.GetInt("nodes", 10000);
    options.num_edges = flags.GetInt("edges", 100000);
    options.deadend_fraction = flags.GetDouble("deadends", 0.0);
    g = GenerateRmat(options, &rng);
  }
  if (!g.ok()) return Fail(g.status());
  Status status = WriteEdgeListFile(*g, out);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %lld nodes, %lld edges to %s\n",
              static_cast<long long>(g->num_nodes()),
              static_cast<long long>(g->num_edges()), out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  auto g = LoadGraphFlag(flags);
  if (!g.ok()) return Fail(g.status());
  const auto deadends = g->Deadends();
  ComponentInfo wcc = ConnectedComponents(SymmetrizePattern(g->adjacency()));
  ComponentInfo scc = StronglyConnectedComponents(g->adjacency());
  index_t max_wcc = 0, max_scc = 0;
  for (index_t s : wcc.sizes) max_wcc = std::max(max_wcc, s);
  for (index_t s : scc.sizes) max_scc = std::max(max_scc, s);
  Table table({"metric", "value"});
  table.AddRow({"nodes", Table::IntGrouped(g->num_nodes())});
  table.AddRow({"edges", Table::IntGrouped(g->num_edges())});
  table.AddRow({"deadends", Table::IntGrouped(
                                static_cast<long long>(deadends.size()))});
  table.AddRow({"weak components", Table::IntGrouped(wcc.num_components)});
  table.AddRow({"largest weak component", Table::IntGrouped(max_wcc)});
  table.AddRow({"strong components", Table::IntGrouped(scc.num_components)});
  table.AddRow({"largest strong component", Table::IntGrouped(max_scc)});
  table.Print();
  return 0;
}

int CmdPreprocess(const Flags& flags) {
  auto g = LoadGraphFlag(flags);
  if (!g.ok()) return Fail(g.status());
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Usage();
  BepiSolver solver(OptionsFromFlags(flags));
  Status status;
  const std::string checkpoint_dir = flags.GetString("checkpoint-dir", "");
  if (!checkpoint_dir.empty()) {
    CheckpointManager checkpoints(checkpoint_dir);
    status = solver.Preprocess(*g, &checkpoints);
  } else {
    status = solver.Preprocess(*g);
  }
  if (!status.ok()) return Fail(status);
  status = solver.SaveFile(model_path);
  if (!status.ok()) return Fail(status);
  std::printf("preprocessed %s in %.3f s (n1=%lld n2=%lld n3=%lld, "
              "|S|=%lld), model (%s) -> %s\n",
              solver.name().c_str(), solver.preprocess_seconds(),
              static_cast<long long>(solver.info().n1),
              static_cast<long long>(solver.info().n2),
              static_cast<long long>(solver.info().n3),
              static_cast<long long>(solver.info().schur_nnz),
              HumanBytes(solver.PreprocessedBytes()).c_str(),
              model_path.c_str());
  if (solver.kernels() != nullptr) {
    std::printf("kernel path: %s (%s)\n",
                KernelPathName(solver.kernels()->path),
                solver.kernels()->reason.c_str());
  }
  if (!checkpoint_dir.empty()) {
    std::printf("checkpoints: %lld written, %lld resumed, %.3f s overhead\n",
                static_cast<long long>(solver.info().checkpoints_written),
                static_cast<long long>(solver.info().checkpoints_resumed),
                solver.info().checkpoint_seconds);
  }
  return 0;
}

int CmdVerifyModel(const Flags& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Usage();
  auto content = ReadFileToString(model_path);
  if (!content.ok()) return Fail(content.status());
  std::istringstream peek(*content);
  std::string header;
  std::getline(peek, header);
  if (header.rfind("BEPI-MODEL v3", 0) != 0) {
    // Pre-v3 formats carry no checksums; the strongest available check is
    // a full parse.
    std::printf("%s: %s (no per-section checksums; running full load "
                "check)\n", model_path.c_str(),
                header.rfind("BEPI-MODEL", 0) == 0 ? header.c_str()
                                                   : "unrecognized header");
    std::istringstream in(*content);
    auto solver = BepiSolver::Load(in);
    if (!solver.ok()) return Fail(solver.status());
    std::printf("load check passed (n=%lld)\n",
                static_cast<long long>(solver->decomposition().n));
    std::printf("kernel schedules: %s\n",
                solver->kernel_schedule_origin().c_str());
    return 0;
  }
  std::istringstream in(*content);
  const IntegrityReport report = CheckIntegrity(in, "BEPI-MODEL");
  std::printf("%s: %s, %zu sections\n", model_path.c_str(),
              report.magic.c_str(), report.sections.size());
  Table table({"section", "offset", "bytes", "crc32c", "status"});
  char crc_hex[32];
  for (const SectionCheck& check : report.sections) {
    if (check.ok) {
      std::snprintf(crc_hex, sizeof(crc_hex), "%08x", check.stored_crc);
    } else {
      std::snprintf(crc_hex, sizeof(crc_hex), "%08x!=%08x",
                    check.stored_crc, check.actual_crc);
    }
    table.AddRow({check.name,
                  Table::Int(static_cast<long long>(check.offset)),
                  Table::Int(static_cast<long long>(check.length)), crc_hex,
                  check.ok ? "ok" : "CORRUPT"});
  }
  table.AddRow({"(manifest)", "", "", "",
                report.manifest_ok ? "ok" : "CORRUPT"});
  table.Print();
  if (!report.overall.ok()) return Fail(report.overall);
  std::printf("all sections verified\n");
  // Checksums prove the bytes are intact; only a real load proves the
  // kernel section's level schedules still match the recomputed ILU(0)
  // pattern. Report which one the query path would actually run with.
  std::istringstream reload(*content);
  auto solver = BepiSolver::Load(reload);
  if (!solver.ok()) return Fail(solver.status());
  std::printf("kernel schedules: %s\n",
              solver->kernel_schedule_origin().c_str());
  return 0;
}

/// `query --stats`: runs --num-queries consecutive seeds and prints a
/// latency table (exact percentiles over the measured sample, not the
/// bucketed histogram approximation).
int QueryLatencyStats(const BepiSolver& solver, index_t first_seed,
                      index_t num_queries) {
  const index_t n = solver.decomposition().n;
  if (num_queries <= 0) {
    return Fail(Status::InvalidArgument("--num-queries must be > 0"));
  }
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(num_queries));
  double total_seconds = 0.0;
  long long total_iterations = 0;
  long long fallback_hops = 0;
  QueryControl control;
  control.cancel = ShutdownToken();
  for (index_t i = 0; i < num_queries; ++i) {
    const index_t seed = (first_seed + i) % n;
    QueryStats stats;
    auto scores = solver.Query(seed, &stats, nullptr, control);
    if (!scores.ok()) return Fail(scores.status());
    latencies_ms.push_back(stats.seconds * 1e3);
    total_seconds += stats.seconds;
    total_iterations += stats.total_iterations;
    fallback_hops += stats.report.fallback_hops();
  }
  Table table({"metric", "value"});
  table.AddRow({"queries", Table::Int(num_queries)});
  table.AddRow({"mean (ms)",
                Table::Num(total_seconds * 1e3 /
                               static_cast<double>(num_queries), 3)});
  table.AddRow({"p50 (ms)", Table::Num(ExactQuantile(latencies_ms, 0.50), 3)});
  table.AddRow({"p90 (ms)", Table::Num(ExactQuantile(latencies_ms, 0.90), 3)});
  table.AddRow({"p95 (ms)", Table::Num(ExactQuantile(latencies_ms, 0.95), 3)});
  table.AddRow({"p99 (ms)", Table::Num(ExactQuantile(latencies_ms, 0.99), 3)});
  table.AddRow({"max (ms)", Table::Num(ExactQuantile(latencies_ms, 1.0), 3)});
  table.AddRow({"inner iterations", Table::Int(total_iterations)});
  table.AddRow({"fallback hops", Table::Int(fallback_hops)});
  table.Print();
  return 0;
}

/// --warm-start vocabulary: absent/empty = cold (default), "mc" = seed
/// the Schur solve from the attached Monte-Carlo engine (needs --graph).
Result<bool> WarmStartFromFlags(const Flags& flags) {
  const std::string ws = flags.GetString("warm-start", "");
  if (ws.empty()) return false;
  if (ws == "mc") return true;
  return Status::InvalidArgument("--warm-start must be \"mc\", got \"" + ws +
                                 "\"");
}

/// Per-query top-k options from the --top-k/--eps flags (exact mode
/// unless --eps > 0).
TopKOptions TopKOptionsFromFlags(const Flags& flags) {
  TopKOptions opts;
  opts.k = flags.GetInt("top-k", 10);
  const double eps = flags.GetDouble("eps", 0.0);
  if (eps > 0.0) {
    opts.mode = TopKMode::kEps;
    opts.eps = static_cast<real_t>(eps);
  }
  return opts;
}

/// Full-precision ranking dump, one "node score" line per entry: `cmp` of
/// a pruned dump against a --topk-via=dense dump of the same query is the
/// exact-mode byte-identity check smoke_topk runs in CI.
int DumpTopKFile(const std::vector<std::pair<index_t, real_t>>& entries,
                 const std::string& dump_path) {
  AtomicFileWriter writer(dump_path);
  if (!writer.status().ok()) return Fail(writer.status());
  char line[80];
  for (const auto& [node, score] : entries) {
    std::snprintf(line, sizeof(line), "%lld %.17g\n",
                  static_cast<long long>(node), static_cast<double>(score));
    writer.stream() << line;
  }
  Status status = writer.Commit();
  if (!status.ok()) return Fail(status);
  std::printf("ranking written to %s\n", dump_path.c_str());
  return 0;
}

/// `query --top-k`: single-seed top-k query. --topk-via=pruned (default)
/// runs the pruned back-substitution; --topk-via=dense forces the
/// full-solve + sort baseline the pruned path must match byte-for-byte.
int QueryTopKSingle(const BepiSolver& solver, const Flags& flags,
                    index_t seed) {
  TopKOptions opts = TopKOptionsFromFlags(flags);
  const std::string via = flags.GetString("topk-via", "pruned");
  if (via != "pruned" && via != "dense") {
    return Fail(Status::InvalidArgument(
        "--topk-via must be \"pruned\" or \"dense\", got \"" + via + "\""));
  }
  auto warm = WarmStartFromFlags(flags);
  if (!warm.ok()) return Fail(warm.status());
  QueryStats stats;
  QueryControl control;
  control.cancel = ShutdownToken();
  control.warm_start_mc = *warm;
  TopKResult result;
  if (via == "dense") {
    const index_t n = solver.decomposition().n;
    if (opts.k < 1 || opts.k > n) {
      return Fail(Status::InvalidArgument(
          "--top-k must be in [1, " + std::to_string(n) + "], got " +
          std::to_string(opts.k)));
    }
    control.eps = opts.eps;
    auto scores = solver.Query(seed, &stats, nullptr, control);
    if (!scores.ok()) return Fail(scores.status());
    result.entries = TopK(*scores, opts.k, opts.exclude);
    if (opts.mode == TopKMode::kEps) result.error_bound = stats.error_bound;
  } else {
    auto r = solver.QueryTopK(seed, opts, &stats, nullptr, control);
    if (!r.ok()) return Fail(r.status());
    result = std::move(*r);
  }
  std::printf("top-%lld query (%s mode, via %s) took %.3f ms\n",
              static_cast<long long>(opts.k), TopKModeName(opts.mode),
              via.c_str(), stats.seconds * 1e3);
  PrintQueryReport(stats);
  if (result.pruned) {
    std::printf("pruned %lld rows, computed %lld candidates "
                "(%llu bytes touched)\n",
                static_cast<long long>(result.pruned_rows),
                static_cast<long long>(result.candidates),
                static_cast<unsigned long long>(result.bytes_touched));
  }
  if (opts.mode == TopKMode::kEps) {
    std::printf("per-score error bound: +/-%.3g\n",
                static_cast<double>(result.error_bound));
  }
  Table table({"rank", "node", "score"});
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    table.AddRow({Table::Int(static_cast<long long>(i) + 1),
                  Table::Int(result.entries[i].first),
                  Table::Num(result.entries[i].second, 6)});
  }
  table.Print();
  const std::string dump_path = flags.GetString("dump-topk", "");
  if (!dump_path.empty()) return DumpTopKFile(result.entries, dump_path);
  return 0;
}

/// `query --seeds-file`: answers every seed in the file concurrently via
/// BatchQueryEngine and prints one summary row per seed plus throughput.
int QueryBatch(const BepiSolver& solver, const Flags& flags,
               const std::string& seeds_path) {
  auto seeds = ReadSeedsFile(seeds_path);
  if (!seeds.ok()) return Fail(seeds.status());
  if (seeds->empty()) {
    return Fail(Status::InvalidArgument("seeds file has no seeds"));
  }
  const index_t n = solver.decomposition().n;
  for (index_t s : *seeds) {
    if (s < 0 || s >= n) {
      return Fail(Status::OutOfRange("seed " + std::to_string(s) +
                                     " out of range [0, " +
                                     std::to_string(n) + ")"));
    }
  }
  BatchQueryOptions batch_options;
  batch_options.cancel = ShutdownToken();
  auto warm = WarmStartFromFlags(flags);
  if (!warm.ok()) return Fail(warm.status());
  batch_options.warm_start_mc = *warm;
  if (flags.Has("top-k")) batch_options.topk = TopKOptionsFromFlags(flags);
  const bool topk_mode = batch_options.topk.k > 0;
  BatchQueryEngine engine(solver, batch_options);
  auto batch = engine.Run(*seeds);
  if (!batch.ok()) return Fail(batch.status());
  Table table({"seed", "ms", "iterations", "top node", "score"});
  for (std::size_t i = 0; i < seeds->size(); ++i) {
    const auto top = topk_mode
                         ? batch->topk[i].entries
                         : TopK(batch->vectors[i], 1, (*seeds)[i]);
    table.AddRow({Table::Int((*seeds)[i]),
                  Table::Num(batch->stats[i].seconds * 1e3, 3),
                  Table::Int(batch->stats[i].total_iterations),
                  top.empty() ? "-" : Table::Int(top[0].first),
                  top.empty() ? "-" : Table::Num(top[0].second, 6)});
  }
  table.Print();
  std::printf("%zu queries in %.3f s (%.1f q/s, %d worker thread%s)\n",
              seeds->size(), batch->seconds, batch->throughput_qps(),
              ParallelContext::Global().num_threads(),
              ParallelContext::Global().num_threads() == 1 ? "" : "s");
  return 0;
}

/// Full-precision dump: round-trips every double exactly, so `cmp` of
/// two dumps is a bit-identity check on the score vectors.
int DumpScores(const Vector& scores, const std::string& dump_path) {
  AtomicFileWriter writer(dump_path);
  if (!writer.status().ok()) return Fail(writer.status());
  char line[64];
  for (real_t s : scores) {
    std::snprintf(line, sizeof(line), "%.17g\n", s);
    writer.stream() << line;
  }
  Status status = writer.Commit();
  if (!status.ok()) return Fail(status);
  std::printf("scores written to %s\n", dump_path.c_str());
  return 0;
}

/// `query --engine=mc`: anytime Monte-Carlo answer straight off the raw
/// graph — no model, no preprocessed factors, just walks plus a bound.
int CmdQueryMc(const Flags& flags) {
  auto g = LoadGraphFlag(flags);
  if (!g.ok()) return Fail(g.status());
  if (!flags.Has("seed-node")) return Usage();
  const index_t seed = flags.GetInt("seed-node", 0);
  McWalkEngine engine(*g);
  McOptions options = McOptionsFromFlags(flags, /*default_walks=*/100'000,
                                         /*default_seed=*/20170514);
  CancelToken token;
  token.LinkFlag(ShutdownFlag());
  const double deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  if (deadline_ms > 0.0) {
    token.SetDeadlineAfter(std::chrono::nanoseconds(
        static_cast<std::int64_t>(deadline_ms * 1e6)));
  }
  options.cancel = &token;
  options.allow_partial = true;
  auto est = engine.EstimateSeed(seed, options);
  if (!est.ok()) return Fail(est.status());
  std::printf(
      "mc estimate: %llu walks (%llu steps) in %.3f ms, outcome %s\n",
      static_cast<unsigned long long>(est->walks_completed),
      static_cast<unsigned long long>(est->total_steps), est->seconds * 1e3,
      SolveOutcomeName(est->outcome));
  std::printf(
      "confidence (>= %.5g): per-coordinate +/-%.3g, sup-norm +/-%.3g\n",
      1.0 - est->delta, static_cast<double>(est->hoeffding_eps),
      static_cast<double>(est->uniform_eps));
  PrintTopK(est->scores, seed, flags.GetInt("topk", 10));
  const std::string dump_path = flags.GetString("dump-scores", "");
  if (!dump_path.empty()) return DumpScores(est->scores, dump_path);
  return 0;
}

int CmdQuery(const Flags& flags) {
  const std::string engine_name = flags.GetString("engine", "exact");
  if (engine_name == "mc") return CmdQueryMc(flags);
  if (engine_name != "exact") {
    return Fail(Status::InvalidArgument("--engine must be exact or mc"));
  }
  const std::string model_path = flags.GetString("model", "");
  const std::string seeds_file = flags.GetString("seeds-file", "");
  if (model_path.empty() ||
      (!flags.Has("seed-node") && seeds_file.empty())) {
    return Usage();
  }
  auto solver = BepiSolver::LoadFile(model_path);
  if (!solver.ok()) return Fail(solver.status());
  // --graph alongside the exact engine arms the Monte-Carlo terminal
  // stage: the graph and engine must outlive every query below.
  std::optional<Graph> fallback_graph;
  std::optional<McWalkEngine> fallback_engine;
  if (flags.Has("graph")) {
    auto g = LoadGraphFlag(flags);
    if (!g.ok()) return Fail(g.status());
    fallback_graph.emplace(std::move(*g));
    fallback_engine.emplace(*fallback_graph);
    const McOptions mo = McOptionsFromFlags(flags, /*default_walks=*/200'000,
                                            /*default_seed=*/20170514);
    McFallbackOptions fo;
    fo.walks = mo.walks;
    fo.delta = mo.delta;
    fo.seed = mo.seed;
    Status attached = solver->AttachMcFallback(&*fallback_engine, fo);
    if (!attached.ok()) return Fail(attached);
  }
  if (!seeds_file.empty()) return QueryBatch(*solver, flags, seeds_file);
  const index_t seed = flags.GetInt("seed-node", 0);
  if (flags.Has("stats")) {
    return QueryLatencyStats(*solver, seed, flags.GetInt("num-queries", 100));
  }
  if (flags.Has("top-k")) return QueryTopKSingle(*solver, flags, seed);
  QueryStats stats;
  QueryControl control;
  control.cancel = ShutdownToken();
  auto warm = WarmStartFromFlags(flags);
  if (!warm.ok()) return Fail(warm.status());
  control.warm_start_mc = *warm;
  auto scores = solver->Query(seed, &stats, nullptr, control);
  if (!scores.ok()) return Fail(scores.status());
  std::printf("query took %.3f ms (%lld inner iterations)\n",
              stats.seconds * 1e3, static_cast<long long>(stats.iterations));
  PrintQueryReport(stats);
  if (!stats.report.attempts.empty() &&
      stats.report.attempts.back().stage == "mc") {
    std::printf("mc terminal stage answered: %lld walks, "
                "error bound +/-%.3g\n",
                static_cast<long long>(stats.iterations),
                static_cast<double>(stats.residual));
  }
  PrintTopK(*scores, seed, flags.GetInt("topk", 10));
  const std::string dump_path = flags.GetString("dump-scores", "");
  if (!dump_path.empty()) return DumpScores(*scores, dump_path);
  return 0;
}

int CmdRank(const Flags& flags) {
  auto g = LoadGraphFlag(flags);
  if (!g.ok()) return Fail(g.status());
  if (!flags.Has("seed-node")) return Usage();
  BepiSolver solver(OptionsFromFlags(flags));
  Status status = solver.Preprocess(*g);
  if (!status.ok()) return Fail(status);
  const index_t seed = flags.GetInt("seed-node", 0);
  QueryStats stats;
  QueryControl control;
  control.cancel = ShutdownToken();
  auto scores = solver.Query(seed, &stats, nullptr, control);
  if (!scores.ok()) return Fail(scores.status());
  PrintQueryReport(stats);
  PrintTopK(*scores, seed, flags.GetInt("topk", 10));
  return 0;
}

/// `crosscheck`: the self-verification layer. Solves each check seed via
/// the solver chain AND via independent Monte-Carlo walks, then verifies
/// |exact - mc| <= mc confidence bound + the solver's own reported
/// residual/bound, per node. Any violation is a loud failure: either an
/// engine is wrong or a bound is dishonest, and both matter.
int CmdCrosscheck(const Flags& flags) {
  auto g = LoadGraphFlag(flags);
  if (!g.ok()) return Fail(g.status());
  BepiOptions options = OptionsFromFlags(flags);
  BepiSolver solver(options);
  Status status = solver.Preprocess(*g);
  if (!status.ok()) return Fail(status);
  McWalkEngine engine(*g);
  // Arm the terminal stage so a fault-injected chain still answers; its
  // default walk seed (20170514) is distinct from the oracle's default
  // below, so even a chain that bottoms out in MC is checked against
  // independent randomness.
  McFallbackOptions fo;
  fo.delta = flags.GetDouble("delta", 0.001);
  status = solver.AttachMcFallback(&engine, fo);
  if (!status.ok()) return Fail(status);

  McOptions oracle = McOptionsFromFlags(flags, /*default_walks=*/200'000,
                                        /*default_seed=*/987654321);
  oracle.restart_prob = options.restart_prob;
  oracle.delta = flags.GetDouble("delta", 0.001);
  oracle.cancel = ShutdownToken();

  const index_t n = g->num_nodes();
  std::vector<index_t> seeds;
  if (flags.Has("seed-node")) {
    seeds.push_back(flags.GetInt("seed-node", 0));
  } else {
    const index_t count = std::max<index_t>(1, flags.GetInt("seeds", 3));
    for (index_t i = 0; i < count; ++i) {
      seeds.push_back((i * 7919 + 1) % n);  // deterministic spread
    }
  }

  Table table({"seed", "stage", "max |diff|", "allowed", "verdict"});
  int violations = 0;
  const double query_eps = flags.GetDouble("query-eps", 0.0);
  for (index_t seed : seeds) {
    QueryStats stats;
    QueryControl control;
    control.cancel = ShutdownToken();
    control.eps = static_cast<real_t>(query_eps);
    auto exact = solver.Query(seed, &stats, nullptr, control);
    if (!exact.ok()) return Fail(exact.status());
    auto est = engine.EstimateSeed(seed, oracle);
    if (!est.ok()) return Fail(est.status());
    // The solver side's own error contribution: a converged Krylov/power
    // attempt reports a residual ~tol; an MC terminal attempt reports its
    // confidence half-width. With --query-eps the truncated solve's
    // propagated per-score bound takes their place — so a dishonest
    // eps-mode bound fails this check exactly like a wrong engine.
    const real_t solver_bound =
        query_eps > 0.0 && stats.error_bound > 0.0 ? stats.error_bound
                                                   : stats.residual;
    real_t worst_diff = 0.0, worst_allowed = 0.0;
    index_t worst_node = -1;
    bool seed_ok = true;
    for (index_t v = 0; v < n; ++v) {
      const real_t diff =
          std::abs((*exact)[static_cast<std::size_t>(v)] -
                   est->scores[static_cast<std::size_t>(v)]);
      const real_t allowed = est->CheckBound(v) + solver_bound + 1e-12;
      if (diff > worst_diff) {
        worst_diff = diff;
        worst_allowed = allowed;
        worst_node = v;
      }
      if (diff > allowed) seed_ok = false;
    }
    if (!seed_ok) ++violations;
    const std::string stage = stats.report.attempts.empty()
                                  ? "direct"
                                  : stats.report.attempts.back().stage;
    table.AddRow({Table::Int(seed), stage, Table::Num(worst_diff, 6),
                  Table::Num(worst_allowed, 6),
                  seed_ok ? "ok" : "VIOLATION"});
    if (!seed_ok) {
      std::fprintf(stderr,
                   "seed %lld: node %lld differs by %.6g > allowed %.6g "
                   "(chain: %s)\n",
                   static_cast<long long>(seed),
                   static_cast<long long>(worst_node),
                   static_cast<double>(worst_diff),
                   static_cast<double>(worst_allowed),
                   stats.report.Summary().c_str());
    }
  }
  table.Print();
  if (violations > 0) {
    std::fprintf(stderr,
                 "CROSSCHECK FAILED: %d of %zu seeds outside the combined "
                 "confidence bound — an engine is wrong or a bound is "
                 "dishonest\n",
                 violations, seeds.size());
    return 1;
  }
  std::printf("crosscheck passed: %zu seed%s, engines agree within "
              "confidence bounds (oracle: %llu walks, delta=%.3g)\n",
              seeds.size(), seeds.size() == 1 ? "" : "s",
              static_cast<unsigned long long>(oracle.walks), oracle.delta);
  return 0;
}

int CmdServe(const Flags& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Usage();
  auto solver = BepiSolver::LoadFile(model_path);
  if (!solver.ok()) return Fail(solver.status());
  // --graph arms the Monte-Carlo terminal stage; graph and engine must
  // outlive the server (declared before it, destroyed after).
  std::optional<Graph> fallback_graph;
  std::optional<McWalkEngine> fallback_engine;
  if (flags.Has("graph")) {
    auto g = LoadGraphFlag(flags);
    if (!g.ok()) return Fail(g.status());
    fallback_graph.emplace(std::move(*g));
    fallback_engine.emplace(*fallback_graph);
    const McOptions mo = McOptionsFromFlags(flags, /*default_walks=*/200'000,
                                            /*default_seed=*/20170514);
    McFallbackOptions fo;
    fo.walks = mo.walks;
    fo.delta = mo.delta;
    fo.seed = mo.seed;
    Status attached = solver->AttachMcFallback(&*fallback_engine, fo);
    if (!attached.ok()) return Fail(attached);
  }
  ServeOptions options;
  options.slots = static_cast<int>(flags.GetInt("slots", 2));
  options.max_queue = flags.GetInt("max-queue", 64);
  options.default_deadline_ms = flags.GetDouble("default-deadline-ms", 0.0);
  options.drain_ms = flags.GetDouble("drain-ms", 5000.0);
  options.watchdog_ms = flags.GetDouble("watchdog-ms", 250.0);
  options.wedge_ms = flags.GetDouble("wedge-ms", 30000.0);
  options.max_line_bytes = static_cast<std::size_t>(
      flags.GetInt("max-line-bytes", 1 << 20));
  options.write_timeout_ms = flags.GetDouble("write-timeout-ms", 5000.0);
  options.max_conns = static_cast<int>(flags.GetInt("max-conns", 64));
  options.slow_ms = flags.GetDouble("slow-ms", 0.0);
  options.flight_dump_path =
      flags.GetString("flight-dump", "bepi-flightrec.json");
  options.cache_mb = static_cast<int>(flags.GetInt("cache-mb", 0));
  options.batch_max = static_cast<int>(flags.GetInt("batch-max", 8));
  options.batch_window_ms = flags.GetDouble("batch-window-ms", 0.0);
  QueryServer server(*solver, options);
  const std::string socket_path = flags.GetString("socket", "");
  const Status status = socket_path.empty()
                            ? server.ServeStream(std::cin, std::cout)
                            : server.ServeUnixSocket(socket_path);
  if (!status.ok()) return Fail(status);
  return 0;
}

/// Renders a --metrics-out snapshot file as Prometheus text exposition.
/// The snapshot's histograms carry cumulative [upper_bound, count] bucket
/// pairs exactly so this command can reconstruct the `le` series offline —
/// the same renderer the server's `metrics` verb uses live.
int CmdMetricsExport(const Flags& flags) {
  const std::string snapshot_path = flags.GetString("snapshot", "");
  if (snapshot_path.empty()) return Usage();
  auto text = ReadFileToString(snapshot_path);
  if (!text.ok()) return Fail(text.status());
  auto parsed = ParseJson(*text);
  if (!parsed.ok()) return Fail(parsed.status());
  if (parsed->type != JsonValue::Type::kObject) {
    return Fail(Status::InvalidArgument(snapshot_path +
                                        ": snapshot root is not an object"));
  }
  const auto section = [&](const char* name) -> const JsonValue* {
    const auto it = parsed->object_value.find(name);
    if (it == parsed->object_value.end() ||
        it->second.type != JsonValue::Type::kObject) {
      return nullptr;
    }
    return &it->second;
  };
  const auto number = [](const JsonValue& obj, const char* key,
                         double fallback) {
    const auto it = obj.object_value.find(key);
    return it != obj.object_value.end() &&
                   it->second.type == JsonValue::Type::kNumber
               ? it->second.number_value
               : fallback;
  };
  std::string out;
  if (const JsonValue* counters = section("counters")) {
    for (const auto& [name, v] : counters->object_value) {
      if (v.type != JsonValue::Type::kNumber) continue;
      PrometheusAppendCounter(&out, name,
                              static_cast<std::uint64_t>(v.number_value));
    }
  }
  if (const JsonValue* gauges = section("gauges")) {
    for (const auto& [name, v] : gauges->object_value) {
      if (v.type != JsonValue::Type::kNumber) continue;
      PrometheusAppendGauge(&out, name, v.number_value);
    }
  }
  if (const JsonValue* histograms = section("histograms")) {
    for (const auto& [name, h] : histograms->object_value) {
      if (h.type != JsonValue::Type::kObject) continue;
      std::vector<PromBucket> buckets;
      const auto bit = h.object_value.find("buckets");
      if (bit != h.object_value.end() &&
          bit->second.type == JsonValue::Type::kArray) {
        for (const JsonValue& pair : bit->second.array_value) {
          if (pair.type != JsonValue::Type::kArray ||
              pair.array_value.size() != 2 ||
              pair.array_value[0].type != JsonValue::Type::kNumber ||
              pair.array_value[1].type != JsonValue::Type::kNumber) {
            return Fail(Status::DataLoss(snapshot_path + ": histogram " +
                                         name + " has a malformed bucket"));
          }
          buckets.push_back(PromBucket{
              pair.array_value[0].number_value,
              static_cast<std::uint64_t>(pair.array_value[1].number_value)});
        }
      }
      HistogramExemplar exemplar;
      const auto eit = h.object_value.find("exemplar");
      if (eit != h.object_value.end() &&
          eit->second.type == JsonValue::Type::kObject) {
        const JsonValue& e = eit->second;
        exemplar.valid = true;
        exemplar.value = number(e, "value", 0.0);
        exemplar.ts_unix_seconds = number(e, "ts", 0.0);
        const auto lit = e.object_value.find("label");
        if (lit != e.object_value.end() &&
            lit->second.type == JsonValue::Type::kString) {
          exemplar.label = lit->second.string_value;
        }
      }
      PrometheusAppendHistogram(
          &out, name, buckets, number(h, "sum", 0.0),
          static_cast<std::uint64_t>(number(h, "count", 0.0)), exemplar);
    }
  }
  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }
  AtomicFileWriter writer(out_path);
  if (!writer.status().ok()) return Fail(writer.status());
  writer.stream() << out;
  const Status committed = writer.Commit();
  if (!committed.ok()) return Fail(committed);
  std::fprintf(stderr, "prometheus exposition written to %s\n",
               out_path.c_str());
  return 0;
}

int RunCommand(const std::string& command, const Flags& flags,
               const std::string& help_topic) {
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "preprocess") return CmdPreprocess(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "rank") return CmdRank(flags);
  if (command == "crosscheck") return CmdCrosscheck(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "metrics-export") return CmdMetricsExport(flags);
  if (command == "verify-model") return CmdVerifyModel(flags);
  if (command == "help") return CmdHelp(help_topic);
  return Usage();
}

/// Writes the telemetry requested via --metrics-out / --trace-out. Runs
/// after the command so the snapshot covers everything it did, even the
/// work preceding a failure.
Status WriteTelemetry(const std::string& metrics_out,
                      const std::string& trace_out) {
  if (!metrics_out.empty()) {
    AtomicFileWriter writer(metrics_out);
    BEPI_RETURN_IF_ERROR(writer.status());
    writer.stream() << MetricsRegistry::Global().SnapshotJson() << "\n";
    BEPI_RETURN_IF_ERROR(writer.Commit());
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    BEPI_RETURN_IF_ERROR(Tracing::WriteChromeTraceFile(trace_out));
    std::fprintf(stderr, "trace written to %s (load in ui.perfetto.dev)\n",
                 trace_out.c_str());
  }
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  bepi::Flags flags = bepi::Flags::Parse(argc - 1, argv + 1);
  // Schema check before any work: an unknown or malformed flag is a hard
  // error naming the offender, never a silent no-op.
  const auto& spec_map = CommandFlagSpecs();
  const auto spec_it = spec_map.find(command);
  if (spec_it != spec_map.end()) {
    const bepi::Status valid = flags.Validate(spec_it->second);
    if (!valid.ok()) {
      std::fprintf(stderr, "error: %s\nrun `bepi_cli help %s` for usage.\n",
                   valid.message().c_str(), command.c_str());
      return 2;
    }
  }
  bepi::InstallShutdownHandler();
  if (flags.Has("log-level")) {
    const auto level = bepi::ParseLogLevel(flags.GetString("log-level", ""));
    if (!level.has_value()) {
      return Fail(bepi::Status::InvalidArgument(
          "unknown --log-level (use debug|info|warning|error)"));
    }
    bepi::SetLogLevel(*level);
  }
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  if (!metrics_out.empty()) bepi::SetMetricsEnabled(true);
  if (!trace_out.empty()) bepi::Tracing::Start();
  if (flags.Has("fault-inject")) {
    bepi::Status status = bepi::FaultInjector::Global().Configure(
        flags.GetString("fault-inject", ""));
    if (!status.ok()) return Fail(status);
  }
  if (flags.Has("threads")) {
    bepi::Status status = bepi::ParallelContext::Global().SetNumThreads(
        static_cast<int>(flags.GetInt("threads", 0)));
    if (!status.ok()) return Fail(status);
  }
  if (flags.Has("kernel")) {
    auto path = bepi::ParseKernelPath(flags.GetString("kernel", ""));
    if (!path.ok()) return Fail(path.status());
    bepi::SetGlobalKernelPath(*path);
  }
  // `help query` arrives as a bare positional, not a --flag (the command
  // itself is argv[1], which Parse skips as the program-name slot).
  const auto& positional = flags.positional();
  const std::string help_topic =
      command == "help" && !positional.empty() ? positional[0] : "";
  int rc = RunCommand(command, flags, help_topic);
  // Telemetry flushes even on a signal-cancelled run: the command wound
  // down cooperatively, so the registry snapshot is consistent.
  const bepi::Status telemetry = WriteTelemetry(metrics_out, trace_out);
  if (!telemetry.ok() && rc == 0) rc = Fail(telemetry);
  if (rc != 0 && bepi::ShutdownRequested()) {
    rc = 128 + bepi::ShutdownSignal();  // conventional ^C exit (130)
  }
  return rc;
}
