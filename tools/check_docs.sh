#!/usr/bin/env bash
# Docs <-> binary cross-check: every --flag and BEPI_* environment
# variable mentioned in README.md / docs/ must resolve to something real
# (bepi_cli help output, a Flags lookup in the source tree, a known
# third-party flag, or a getenv/macro in the source), and every
# environment variable the code actually reads must be documented in
# docs/OPERATIONS.md. The metric glossary in docs/OPERATIONS.md is
# additionally cross-checked both ways: every key the binary's
# --metrics-out snapshots emit must have a glossary row, and every
# glossary row must name a metric registered in src/. Run by
# tools/ci.sh in the default configuration.
#
# Usage: tools/check_docs.sh [path/to/bepi_cli]
set -euo pipefail

cd "$(dirname "$0")/.."

cli="${1:-}"
if [ -z "$cli" ]; then
  for candidate in build/tools/bepi_cli build-ci/default/tools/bepi_cli; do
    [ -x "$candidate" ] && cli="$candidate" && break
  done
fi
if [ -z "$cli" ] || [ ! -x "$cli" ]; then
  echo "check_docs: bepi_cli binary not found (pass its path)" >&2
  exit 2
fi

docs=(README.md DESIGN.md EXPERIMENTS.md docs/ARCHITECTURE.md docs/OPERATIONS.md docs/SERVING.md)
for doc in "${docs[@]}"; do
  if [ ! -f "$doc" ]; then
    echo "check_docs: missing documentation file $doc" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# --- Known flags -----------------------------------------------------------
# 1. Everything bepi_cli prints in its usage and per-command help.
"$cli" help >"$workdir/help.txt" 2>&1 || true
grep -E '^  [a-z][a-z-]+ ' "$workdir/help.txt" | awk '{print $1}' |
  sort -u >"$workdir/commands.txt"
while read -r cmd; do
  "$cli" help "$cmd" >>"$workdir/help.txt" 2>&1 || true
done <"$workdir/commands.txt"

# 2. Every flag any binary in the tree looks up through common/flags.
grep -rhoE '(GetString|GetInt|GetDouble|GetBool|Has)\("[a-z][a-z0-9_-]*"' \
  src tools bench examples |
  sed -E 's/.*\("([a-z][a-z0-9_-]*)"/--\1/' >"$workdir/known_flags.txt"
grep -oE -- '--[a-z][a-z0-9_-]+' "$workdir/help.txt" >>"$workdir/known_flags.txt"
# 3. Third-party flags legitimately mentioned in the docs: google
#    benchmark's native flags, ctest options, cmake --build.
cat >>"$workdir/known_flags.txt" <<'EOF'
--benchmark_filter
--benchmark_min_time
--benchmark_out
--benchmark_out_format
--test-dir
--output-on-failure
--gtest_filter
--build
EOF
sort -u "$workdir/known_flags.txt" -o "$workdir/known_flags.txt"

grep -hoE -- '--[a-z][a-z0-9_-]+' "${docs[@]}" | sort -u \
  >"$workdir/doc_flags.txt"

bad_flags="$(comm -23 "$workdir/doc_flags.txt" "$workdir/known_flags.txt")"
if [ -n "$bad_flags" ]; then
  echo "check_docs: documented flags with no implementation:" >&2
  echo "$bad_flags" >&2
  exit 1
fi

# --- Known environment variables -------------------------------------------
# getenv() calls, the BEPI_SANITIZE CMake cache variable, and BEPI_*
# macro names (so prose about BEPI_CHECK etc. is not flagged as a
# phantom env var).
{
  grep -rh 'getenv' src tools bench examples | grep -oE 'BEPI_[A-Z_]+' || true
  echo "BEPI_SANITIZE"
  grep -rhoE '#define (BEPI_[A-Z_]+)' src | awk '{print $2}'
} | sort -u >"$workdir/known_envs.txt"

grep -hoE 'BEPI_[A-Z_]+' "${docs[@]}" | sort -u >"$workdir/doc_envs.txt"

# Prose like "the BEPI_METRIC_* macros" extracts as the prefix
# "BEPI_METRIC_"; accept a doc token when it is a prefix of a known name.
bad_envs="$(while read -r token; do
  grep -q "^$token" "$workdir/known_envs.txt" || echo "$token"
done <"$workdir/doc_envs.txt")"
if [ -n "$bad_envs" ]; then
  echo "check_docs: documented BEPI_* names the code never reads/defines:" >&2
  echo "$bad_envs" >&2
  exit 1
fi

# Reverse direction: every env var the code reads must be documented in
# OPERATIONS.md (macros are exempt — they are API, not operations).
undocumented="$(
  {
    grep -rh 'getenv' src tools bench examples | grep -oE 'BEPI_[A-Z_]+' || true
    echo "BEPI_SANITIZE"
  } | sort -u | while read -r var; do
    grep -q "$var" docs/OPERATIONS.md || echo "$var"
  done
)"
if [ -n "$undocumented" ]; then
  echo "check_docs: env vars read by the code but absent from docs/OPERATIONS.md:" >&2
  echo "$undocumented" >&2
  exit 1
fi

# Every subcommand must be covered in OPERATIONS.md.
missing_cmds="$(while read -r cmd; do
  grep -q "### $cmd" docs/OPERATIONS.md || echo "$cmd"
done <"$workdir/commands.txt")"
if [ -n "$missing_cmds" ]; then
  echo "check_docs: bepi_cli commands missing from docs/OPERATIONS.md:" >&2
  echo "$missing_cmds" >&2
  exit 1
fi

# --- Metric glossary -------------------------------------------------------
# Both directions against the "## Metric glossary" table in
# docs/OPERATIONS.md:
#  1. every metric key that instrumented runs (preprocess, a fully
#     fault-injected query, a serve session) actually emit in their
#     --metrics-out snapshots must match a glossary row — rows may use
#     <placeholder> wildcards like solver.attempts.<stage>;
#  2. every glossary row must correspond to a metric name registered
#     somewhere in src/ (BEPI_METRIC_* / Get{Counter,Gauge,Histogram}),
#     so a renamed or deleted metric cannot linger in the docs.
"$cli" generate --out="$workdir/g.txt" --nodes=400 --edges=1800 \
  --deadends=0.2 --seed=7 >/dev/null
"$cli" preprocess --graph="$workdir/g.txt" --model="$workdir/m.txt" \
  --metrics-out="$workdir/metrics_pre.json" >/dev/null 2>&1
BEPI_FAULT_INJECT=gmres.stagnate,bicgstab.breakdown,power.stall \
  "$cli" query --model="$workdir/m.txt" --graph="$workdir/g.txt" \
  --seed-node=5 --metrics-out="$workdir/metrics_query.json" >/dev/null 2>&1
printf '{"op":"query","seed":1}\n' |
  "$cli" serve --model="$workdir/m.txt" --slow-ms=0.000001 \
    --metrics-out="$workdir/metrics_serve.json" >/dev/null 2>&1
grep -rhE 'BEPI_METRIC_|GetCounter\(|GetGauge\(|GetHistogram\(' src |
  grep -oE '"[a-z][a-z0-9_.+]+"' | tr -d '"' | sort -u \
  >"$workdir/registered_metrics.txt"
python3 - "$workdir" <<'EOF'
import json, re, sys
work = sys.argv[1]
doc = open("docs/OPERATIONS.md").read()
section = re.search(r"## Metric glossary\n(.*?)(?:\n## |\Z)", doc, re.S)
assert section, "docs/OPERATIONS.md has no '## Metric glossary' section"
rows = re.findall(r"`([a-z][a-z0-9_.+]*(?:<[a-z]+>)?[a-z0-9_.+]*)`",
                  section.group(1))
rows = sorted(set(r for r in rows if "." in r))
assert rows, "metric glossary has no rows"

def to_regex(row):
    parts = re.split(r"(<[^>]+>)", row)
    return re.compile("^" + "".join(
        "[A-Za-z0-9_+]+" if p.startswith("<") else re.escape(p)
        for p in parts) + "$")

patterns = [(row, to_regex(row)) for row in rows]
emitted = set()
for run in ("pre", "query", "serve"):
    snap = json.load(open(f"{work}/metrics_{run}.json"))
    for kind in ("counters", "gauges", "histograms"):
        emitted |= set(snap.get(kind, {}))
undocumented = [k for k in sorted(emitted)
                if not any(p.match(k) for _, p in patterns)]
assert not undocumented, (
    f"metrics emitted but absent from the glossary: {undocumented}")
registered = set(open(f"{work}/registered_metrics.txt").read().split())
stale = []
for row, _ in patterns:
    prefix = row.split("<")[0]
    if "<" in row:
        if not any(n.startswith(prefix) for n in registered):
            stale.append(row)
    elif row not in registered:
        stale.append(row)
assert not stale, f"glossary rows with no registered metric: {stale}"
print(f"check_docs: metric glossary covers all {len(emitted)} emitted "
      f"keys; all {len(patterns)} glossary rows are registered in src/")
EOF

# --- Serve protocol reference ----------------------------------------------
# docs/SERVING.md is the wire reference for `serve`, cross-checked both
# ways against the binary and the protocol implementation:
#  1. its flag table must list exactly the serve-specific flags that
#     `bepi_cli help serve` prints (before the "global flags" section);
#  2. every request key ParseRequest accepts, every response key the
#     server emits, and every stable error code must appear backticked
#     in SERVING.md — so a new or renamed field cannot ship undocumented;
#  3. every first-column `field` in SERVING.md's tables must be parsed
#     or emitted somewhere in src/server/ — so a stale field cannot
#     linger in the docs.
"$cli" help serve >"$workdir/help_serve.txt" 2>&1 || true
python3 - "$workdir" <<'EOF'
import re, sys
work = sys.argv[1]
doc = open("docs/SERVING.md").read()
src = ""
for f in ("server.cpp", "server.hpp", "protocol.cpp", "protocol.hpp",
          "admission.cpp", "admission.hpp", "cache.cpp", "cache.hpp"):
    src += open(f"src/server/{f}").read()

# Flags: help serve's serve-specific section vs the SERVING.md table.
help_text = open(f"{work}/help_serve.txt").read()
serve_help = help_text.split("global flags:")[0]
help_flags = set(re.findall(r"--[a-z][a-z0-9-]+", serve_help))
doc_flags = set(re.findall(r"^\| `(--[a-z][a-z0-9-]+)", doc, re.M))
assert doc_flags == help_flags, (
    "SERVING.md flag table out of sync with `bepi_cli help serve`: "
    f"missing {sorted(help_flags - doc_flags)}, "
    f"stale {sorted(doc_flags - help_flags)}")

# Protocol schema: request keys, emitted response keys, error codes.
request_keys = set(re.findall(r'key == "([a-z_]+)"', src)) | {"op"}
emitted_keys = (set(re.findall(r'\\"([a-z][a-z0-9_]*)\\":', src)) |
                set(re.findall(r'field\("([a-z0-9_]+)"', src)))
error_codes = set(
    re.findall(r'inline constexpr char k\w+\[\] = "([a-z_]+)"', src))
known = request_keys | emitted_keys | error_codes
documented = set(re.findall(r"`([a-z][a-z0-9_]*)`", doc))
undocumented = sorted((request_keys | emitted_keys | error_codes)
                      - documented)
assert not undocumented, (
    f"protocol names absent from SERVING.md: {undocumented}")
table_fields = set(re.findall(r"^\| `([a-z][a-z0-9_]*)`", doc, re.M))
stale = sorted(table_fields - known)
assert not stale, (
    f"SERVING.md documents fields src/server/ never parses or emits: "
    f"{stale}")
print(f"check_docs: SERVING.md covers all {len(help_flags)} serve flags, "
      f"{len(request_keys)} request keys, {len(emitted_keys)} response "
      f"keys and {len(error_codes)} error codes; all "
      f"{len(table_fields)} table fields are real")
EOF

echo "check_docs: $(wc -l <"$workdir/doc_flags.txt") flags and" \
  "$(wc -l <"$workdir/doc_envs.txt") BEPI_* names verified across" \
  "${#docs[@]} documentation files"
