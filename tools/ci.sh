#!/usr/bin/env bash
# Local CI: builds and runs the test suite in the default configuration and
# under ASan/UBSan (BEPI_SANITIZE in CMakeLists.txt). Build trees live under
# build-ci/ so the developer's build/ directory is left alone. The IO/crash
# fault-injection tests (test_durability, test_checkpoint) run under all
# three configurations as part of the normal ctest pass.
#
# After a default-configuration build, a kill-and-resume smoke test runs
# the real CLI end to end: preprocessing is SIGKILLed at every checkpoint
# commit in turn (checkpoint.crash fault site), resumed until it completes,
# and the resumed model must be byte-identical to a from-scratch run.
#
# Usage: tools/ci.sh [default|address|undefined ...]
#   With no arguments all three configurations run.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"
configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(default address undefined)
fi

smoke_kill_resume() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== kill-and-resume smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/scratch.txt" \
    >/dev/null

  # Kill preprocessing at its first checkpoint commit, over and over: each
  # attempt makes exactly one more stage durable, so the loop sweeps every
  # crash point. A fully resumed run writes no checkpoints and completes.
  local attempts=0 status
  while :; do
    status=0
    "$cli" preprocess --graph="$work/graph.txt" --model="$work/resumed.txt" \
      --checkpoint-dir="$work/ckpt" --fault-inject=checkpoint.crash:0:1 \
      >/dev/null 2>&1 || status=$?
    [ "$status" -eq 0 ] && break
    if [ "$status" -ne 137 ]; then
      echo "preprocess exited with unexpected status $status (want 137)" >&2
      exit 1
    fi
    attempts=$((attempts + 1))
    if [ "$attempts" -gt 64 ]; then
      echo "kill-and-resume did not converge after $attempts kills" >&2
      exit 1
    fi
  done
  echo "    survived $attempts SIGKILLs; comparing resumed model to scratch"
  cmp "$work/scratch.txt" "$work/resumed.txt"
  "$cli" verify-model --model="$work/resumed.txt" >/dev/null

  # And the fsck must catch a corrupted model (model files are text, so a
  # NUL byte can never be a legitimate value).
  printf '\x00' | dd of="$work/resumed.txt" bs=1 seek=200 conv=notrunc \
    2>/dev/null
  if "$cli" verify-model --model="$work/resumed.txt" >/dev/null 2>&1; then
    echo "verify-model missed an injected corruption" >&2
    exit 1
  fi
  echo "    resumed model byte-identical; verify-model catches corruption"
  rm -rf "$work"
}

for config in "${configs[@]}"; do
  case "$config" in
    default) sanitize="" ;;
    address | undefined) sanitize="$config" ;;
    *)
      echo "unknown configuration: $config (want default|address|undefined)" >&2
      exit 2
      ;;
  esac
  build_dir="build-ci/$config"
  echo "=== [$config] configure ==="
  cmake -B "$build_dir" -S . -DBEPI_SANITIZE="$sanitize" >/dev/null
  echo "=== [$config] build ==="
  cmake --build "$build_dir" -j "$jobs"
  echo "=== [$config] test ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
  if [ "$config" = default ]; then
    smoke_kill_resume "$build_dir/tools/bepi_cli"
  fi
done

echo "=== all configurations passed ==="
