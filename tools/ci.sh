#!/usr/bin/env bash
# Local CI: builds and runs the test suite in the default configuration and
# under ASan/UBSan (BEPI_SANITIZE in CMakeLists.txt). Build trees live under
# build-ci/ so the developer's build/ directory is left alone.
#
# Usage: tools/ci.sh [default|address|undefined ...]
#   With no arguments all three configurations run.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"
configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(default address undefined)
fi

for config in "${configs[@]}"; do
  case "$config" in
    default) sanitize="" ;;
    address | undefined) sanitize="$config" ;;
    *)
      echo "unknown configuration: $config (want default|address|undefined)" >&2
      exit 2
      ;;
  esac
  build_dir="build-ci/$config"
  echo "=== [$config] configure ==="
  cmake -B "$build_dir" -S . -DBEPI_SANITIZE="$sanitize" >/dev/null
  echo "=== [$config] build ==="
  cmake --build "$build_dir" -j "$jobs"
  echo "=== [$config] test ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
done

echo "=== all configurations passed ==="
