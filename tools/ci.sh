#!/usr/bin/env bash
# Local CI: builds and runs the test suite in the default configuration and
# under ASan/UBSan (BEPI_SANITIZE in CMakeLists.txt). Build trees live under
# build-ci/ so the developer's build/ directory is left alone. The IO/crash
# fault-injection tests (test_durability, test_checkpoint) run under all
# sanitizer configurations as part of the normal ctest pass.
#
# After a default-configuration build, four smoke tests run against the
# real binaries:
#   * kill-and-resume: preprocessing is SIGKILLed at every checkpoint
#     commit in turn (checkpoint.crash fault site), resumed until it
#     completes, and the resumed model must be byte-identical to a
#     from-scratch run;
#   * telemetry: preprocess + query with --metrics-out/--trace-out, then
#     the emitted JSON is parsed and probed for the expected solver
#     counters, latency histogram and trace spans;
#   * kernel paths: preprocessing a small graph must auto-select the
#     compact 32-bit kernel path, and full-precision score dumps must be
#     byte-identical across --kernel=compact/wide and --threads=1/4;
#   * bench artifacts: bench_kernels, bench_fig1_query and
#     bench_fig5_scalability write BENCH_kernels.json /
#     BENCH_fig1_query.json / BENCH_parallel_scaling.json (smallest
#     dataset scale) under build-ci/artifacts/, and all must parse;
#   * docs cross-check: tools/check_docs.sh verifies every flag and
#     BEPI_* variable documented in README/docs against the binary and
#     the source tree.
#
# The "thread" configuration is narrower than the others: it builds only
# the concurrency-sensitive tests (test_metrics, test_trace,
# test_parallel, test_trisolve, test_kernel) under TSan and runs them
# directly — the registry's sharded counters, the per-thread trace
# buffers, the work-stealing pool and the level-scheduled triangular
# solves are where new data races would land.
#
# Usage: tools/ci.sh [default|address|undefined|thread ...]
#   With no arguments all four configurations run.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"
configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(default address undefined thread)
fi

smoke_kill_resume() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== kill-and-resume smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/scratch.txt" \
    >/dev/null

  # Kill preprocessing at its first checkpoint commit, over and over: each
  # attempt makes exactly one more stage durable, so the loop sweeps every
  # crash point. A fully resumed run writes no checkpoints and completes.
  local attempts=0 status
  while :; do
    status=0
    "$cli" preprocess --graph="$work/graph.txt" --model="$work/resumed.txt" \
      --checkpoint-dir="$work/ckpt" --fault-inject=checkpoint.crash:0:1 \
      >/dev/null 2>&1 || status=$?
    [ "$status" -eq 0 ] && break
    if [ "$status" -ne 137 ]; then
      echo "preprocess exited with unexpected status $status (want 137)" >&2
      exit 1
    fi
    attempts=$((attempts + 1))
    if [ "$attempts" -gt 64 ]; then
      echo "kill-and-resume did not converge after $attempts kills" >&2
      exit 1
    fi
  done
  echo "    survived $attempts SIGKILLs; comparing resumed model to scratch"
  cmp "$work/scratch.txt" "$work/resumed.txt"
  "$cli" verify-model --model="$work/resumed.txt" >/dev/null

  # And the fsck must catch a corrupted model (model files are text, so a
  # NUL byte can never be a legitimate value).
  printf '\x00' | dd of="$work/resumed.txt" bs=1 seek=200 conv=notrunc \
    2>/dev/null
  if "$cli" verify-model --model="$work/resumed.txt" >/dev/null 2>&1; then
    echo "verify-model missed an injected corruption" >&2
    exit 1
  fi
  echo "    resumed model byte-identical; verify-model catches corruption"
  rm -rf "$work"
}

smoke_telemetry() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== telemetry smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/model.txt" \
    --metrics-out="$work/pre_metrics.json" \
    --trace-out="$work/pre_trace.json" >/dev/null
  "$cli" query --model="$work/model.txt" --seed-node=0 --stats \
    --num-queries=25 \
    --metrics-out="$work/query_metrics.json" \
    --trace-out="$work/query_trace.json" >/dev/null
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]

pre = json.load(open(f"{work}/pre_metrics.json"))
for key in ("counters", "gauges", "histograms"):
    assert key in pre, f"preprocess metrics missing {key!r}"
assert pre["counters"].get("slashburn.rounds", 0) > 0, pre["counters"]

qm = json.load(open(f"{work}/query_metrics.json"))
counters = qm["counters"]
assert counters.get("query.count") == 25, counters
assert counters.get("gmres.solves", 0) > 0, counters
assert counters.get("spmv.calls", 0) > 0, counters
latency = qm["histograms"]["query.latency_seconds"]
assert latency["count"] == 25, latency
for q in ("p50", "p95", "p99"):
    assert latency[q] > 0, latency

for name, want in (("pre_trace", "preprocess"), ("query_trace", "query")):
    trace = json.load(open(f"{work}/{name}.json"))
    events = trace["traceEvents"]
    assert events, f"{name}: no trace events"
    names = {e["name"] for e in events}
    assert want in names, f"{name}: missing span {want!r} in {sorted(names)}"
    assert all(e["ph"] == "X" for e in events), name
print("    telemetry JSON parses; counters, histogram and spans present")
EOF
  rm -rf "$work"
}

smoke_kernel_paths() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== kernel-path smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/model.txt" \
    >"$work/pre.out"
  if ! grep -q "kernel path: compact" "$work/pre.out"; then
    echo "preprocess did not auto-select the compact kernel path:" >&2
    cat "$work/pre.out" >&2
    exit 1
  fi
  # One query per (kernel, threads) combination. The dumps are
  # full-precision (%.17g round-trips doubles exactly), so cmp checks
  # bit-identity of the whole score vector, not a tolerance.
  local kernel threads
  for kernel in compact wide; do
    for threads in 1 4; do
      "$cli" query --model="$work/model.txt" --seed-node=3 \
        --kernel="$kernel" --threads="$threads" \
        --dump-scores="$work/scores_${kernel}_${threads}.txt" >/dev/null
    done
  done
  cmp "$work/scores_compact_1.txt" "$work/scores_wide_1.txt"
  cmp "$work/scores_compact_1.txt" "$work/scores_compact_4.txt"
  cmp "$work/scores_compact_1.txt" "$work/scores_wide_4.txt"
  echo "    compact auto-selected; scores bit-identical across" \
    "--kernel compact/wide and --threads 1/4"
  rm -rf "$work"
}

bench_artifacts() {
  local build_dir="$1"
  local out="$build_dir/../artifacts"
  mkdir -p "$out"
  echo "=== benchmark artifacts ==="
  # Cheapest sizes only: the artifact's job is to prove the JSON emitters
  # work end to end, not to produce stable timings. The kernel-layer
  # comparison pairs (wide vs compact, serial vs level-scheduled, fused
  # vs unfused) also run at 16384, where the working set leaves L2 and
  # the index-width bandwidth effect is actually visible.
  "$build_dir/bench/bench_kernels" \
    --benchmark_filter='/4096$|/1024$|/512$|^BM_(KernelSpMV|Residual|Trisolve|Ilu0Apply)[A-Za-z]+/16384$' \
    --benchmark_min_time=0.05 \
    --benchmark_out="$out/BENCH_kernels.json" \
    --benchmark_out_format=json >/dev/null
  "$build_dir/bench/bench_fig1_query" --scale=0.05 --queries=3 \
    --json-out="$out/BENCH_fig1_query.json" >/dev/null
  "$build_dir/bench/bench_fig5_scalability" --scale=0.05 --slices=2 \
    --queries=2 --threads=4 --batch=8 \
    --json-out="$out/BENCH_parallel_scaling.json" >/dev/null
  python3 - "$out" <<'EOF'
import json, sys
out = sys.argv[1]
kernels = json.load(open(f"{out}/BENCH_kernels.json"))
assert kernels["benchmarks"], "BENCH_kernels.json has no benchmarks"
fig1 = json.load(open(f"{out}/BENCH_fig1_query.json"))
assert fig1["bench"] == "fig1_query", fig1.get("bench")
results = fig1["results"]
assert results, "BENCH_fig1_query.json has no results"
methods = {r["method"] for r in results}
assert "bepi" in methods, sorted(methods)
scaling = json.load(open(f"{out}/BENCH_parallel_scaling.json"))
assert scaling["bench"] == "parallel_scaling", scaling.get("bench")
srec = scaling["results"]
assert srec, "BENCH_parallel_scaling.json has no results"
widths = {r["method"] for r in srec}
assert "threads=1" in widths and "threads=4" in widths, sorted(widths)
ident = [r for r in srec if r["metric"] == "bit_identical"]
assert ident and all(r["value"] == 1.0 for r in ident), ident
print(f"    {len(kernels['benchmarks'])} kernel benchmarks, "
      f"{len(results)} fig1 records, {len(srec)} scaling records")
EOF
}

for config in "${configs[@]}"; do
  case "$config" in
    default) sanitize="" ;;
    address | undefined | thread) sanitize="$config" ;;
    *)
      echo "unknown configuration: $config" \
        "(want default|address|undefined|thread)" >&2
      exit 2
      ;;
  esac
  build_dir="build-ci/$config"
  echo "=== [$config] configure ==="
  cmake -B "$build_dir" -S . -DBEPI_SANITIZE="$sanitize" >/dev/null
  if [ "$config" = thread ]; then
    # TSan pass: the telemetry tests (sharded registry, per-thread trace
    # buffers), the parallel layer (work-stealing pool, TaskGroup,
    # batched queries) and the level-scheduled kernel layer (parallel
    # triangular solves, ILU(0) apply) are the concurrency-bearing
    # surface.
    echo "=== [$config] build (test_metrics, test_trace, test_parallel," \
      "test_trisolve, test_kernel) ==="
    cmake --build "$build_dir" -j "$jobs" \
      --target test_metrics test_trace test_parallel test_trisolve \
      test_kernel
    echo "=== [$config] test ==="
    "$build_dir/tests/test_metrics"
    "$build_dir/tests/test_trace"
    "$build_dir/tests/test_parallel"
    "$build_dir/tests/test_trisolve"
    "$build_dir/tests/test_kernel"
    continue
  fi
  echo "=== [$config] build ==="
  cmake --build "$build_dir" -j "$jobs"
  echo "=== [$config] test ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
  if [ "$config" = default ]; then
    smoke_kill_resume "$build_dir/tools/bepi_cli"
    smoke_telemetry "$build_dir/tools/bepi_cli"
    smoke_kernel_paths "$build_dir/tools/bepi_cli"
    bench_artifacts "$build_dir"
    echo "=== docs cross-check ==="
    tools/check_docs.sh "$build_dir/tools/bepi_cli"
  fi
done

echo "=== all configurations passed ==="
