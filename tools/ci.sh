#!/usr/bin/env bash
# Local CI: builds and runs the test suite in the default configuration and
# under ASan/UBSan (BEPI_SANITIZE in CMakeLists.txt). Build trees live under
# build-ci/ so the developer's build/ directory is left alone. The IO/crash
# fault-injection tests (test_durability, test_checkpoint) run under all
# sanitizer configurations as part of the normal ctest pass.
#
# After a default-configuration build, several smoke tests run against
# the real binaries:
#   * kill-and-resume: preprocessing is SIGKILLed at every checkpoint
#     commit in turn (checkpoint.crash fault site), resumed until it
#     completes, and the resumed model must be byte-identical to a
#     from-scratch run;
#   * telemetry: preprocess + query with --metrics-out/--trace-out, then
#     the emitted JSON is parsed and probed for the expected solver
#     counters, latency histogram and trace spans;
#   * kernel paths: preprocessing a small graph must auto-select the
#     compact 32-bit kernel path, and full-precision score dumps must be
#     byte-identical across --kernel=compact/wide and --threads=1/4;
#   * serve: the long-running query server's operational contract —
#     responses bit-identical to one-shot queries, hostile input and
#     injected protocol faults answered without killing the process,
#     sub-solve deadlines reported as deadline_exceeded, a full bounded
#     queue shedding load as "overloaded", concurrent socket clients,
#     SIGTERM draining to exit 0 with telemetry flushed, and SIGKILL
#     leaving the model file untouched;
#   * batch serve: the coalescing scheduler and the hot-seed score cache
#     against an interactive two-wave session — wave 1 floods duplicate
#     and distinct seeds into one batch window and every coalesced
#     response must be bit-identical to a one-shot `query --dump-scores`
#     of the same seed; wave 2 repeats the seeds and must be answered
#     entirely from the cache (stage "cache", counters to match); then a
#     faulted batch (gmres.stagnate on one column) must degrade that
#     column alone while the rest stay coalesced, all still identical;
#   * crosscheck: the Monte-Carlo oracle against the exact solve on two
#     example graphs, then with every linear-algebra stage fault-injected
#     so the degradation chain must bottom out in the MC terminal stage
#     and still answer (CLI and serve) with a bounded-error reply;
#   * top-k: exact-mode `query --top-k` dumps must be byte-identical to
#     sorting a full dense solve (--topk-via=dense) across
#     --kernel=compact/wide and --threads=1/4 on two example graphs,
#     crosscheck --query-eps verifies the eps-mode per-score bound
#     against the MC oracle, and a fully faulted chain must still answer
#     a top-k query with an explicit bound;
#   * observability: a request_id-tagged flood scraped mid-flight with the
#     metrics verb and re-rendered offline via metrics-export (both must
#     pass a strict Prometheus text-format parse with cumulative buckets
#     and a request_id exemplar), the fully fault-injected degradation
#     chain with the response's per-stage timing, the flight-recorder hop
#     trail and the slow-query log all agreeing on one request_id, a
#     watchdog trip auto-dumping a Perfetto trace, and score bit-identity
#     with the forensics features on and off;
#   * bench artifacts: bench_kernels, bench_fig1_query,
#     bench_fig5_scalability, bench_serve, bench_batch_serve, bench_mc,
#     bench_topk and bench_observability write BENCH_kernels.json /
#     BENCH_fig1_query.json / BENCH_parallel_scaling.json /
#     BENCH_serve.json / BENCH_batch_serve.json / BENCH_mc.json /
#     BENCH_topk.json / BENCH_observability.json (smallest dataset
#     scale, except the observability overhead run which needs full-size
#     queries) under build-ci/artifacts/, and all must parse — the mc
#     artifact additionally asserts every estimate stayed within its
#     confidence bound and was bit-identical across threads, the
#     batch-serve artifact asserts per-query stream bytes fall
#     monotonically with the batch width and cache hits beat cold
#     solves, the topk artifact asserts exact-mode answers matched the
#     dense sort and the k=1 pruned back-substitution cleared the
#     byte-reduction floor (>=1.2x fewer bytes than the dense baseline),
#     and the observability artifact asserts bit-identical scores and
#     <2% query overhead with the forensics machinery on;
#   * docs cross-check: tools/check_docs.sh verifies every flag and
#     BEPI_* variable documented in README/docs against the binary and
#     the source tree.
#
# The "thread" configuration is narrower than the others: it builds only
# the concurrency-sensitive tests (test_metrics, test_trace,
# test_parallel, test_trisolve, test_kernel, test_cancel, test_mc,
# test_topk, test_server, test_cache, test_flightrec, test_promtext)
# under TSan and runs them directly — the registry's sharded counters,
# the per-thread trace buffers, the work-stealing pool, the
# level-scheduled triangular solves, mid-solve cancellation, the
# Monte-Carlo walk engine's atomic visit counters, the batch engine's
# parallel top-k slots, the query server's worker pool, the score
# cache's LRU under concurrent readers/writers, the flight recorder's
# seqlock rings and the concurrent Prometheus render are where new data
# races would land.
#
# Usage: tools/ci.sh [default|address|undefined|thread ...]
#   With no arguments all four configurations run.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"
configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(default address undefined thread)
fi

smoke_kill_resume() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== kill-and-resume smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/scratch.txt" \
    >/dev/null

  # Kill preprocessing at its first checkpoint commit, over and over: each
  # attempt makes exactly one more stage durable, so the loop sweeps every
  # crash point. A fully resumed run writes no checkpoints and completes.
  local attempts=0 status
  while :; do
    status=0
    "$cli" preprocess --graph="$work/graph.txt" --model="$work/resumed.txt" \
      --checkpoint-dir="$work/ckpt" --fault-inject=checkpoint.crash:0:1 \
      >/dev/null 2>&1 || status=$?
    [ "$status" -eq 0 ] && break
    if [ "$status" -ne 137 ]; then
      echo "preprocess exited with unexpected status $status (want 137)" >&2
      exit 1
    fi
    attempts=$((attempts + 1))
    if [ "$attempts" -gt 64 ]; then
      echo "kill-and-resume did not converge after $attempts kills" >&2
      exit 1
    fi
  done
  echo "    survived $attempts SIGKILLs; comparing resumed model to scratch"
  cmp "$work/scratch.txt" "$work/resumed.txt"
  "$cli" verify-model --model="$work/resumed.txt" >/dev/null

  # And the fsck must catch a corrupted model (model files are text, so a
  # NUL byte can never be a legitimate value).
  printf '\x00' | dd of="$work/resumed.txt" bs=1 seek=200 conv=notrunc \
    2>/dev/null
  if "$cli" verify-model --model="$work/resumed.txt" >/dev/null 2>&1; then
    echo "verify-model missed an injected corruption" >&2
    exit 1
  fi
  echo "    resumed model byte-identical; verify-model catches corruption"
  rm -rf "$work"
}

smoke_telemetry() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== telemetry smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/model.txt" \
    --metrics-out="$work/pre_metrics.json" \
    --trace-out="$work/pre_trace.json" >/dev/null
  "$cli" query --model="$work/model.txt" --seed-node=0 --stats \
    --num-queries=25 \
    --metrics-out="$work/query_metrics.json" \
    --trace-out="$work/query_trace.json" >/dev/null
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]

pre = json.load(open(f"{work}/pre_metrics.json"))
for key in ("counters", "gauges", "histograms"):
    assert key in pre, f"preprocess metrics missing {key!r}"
assert pre["counters"].get("slashburn.rounds", 0) > 0, pre["counters"]

qm = json.load(open(f"{work}/query_metrics.json"))
counters = qm["counters"]
assert counters.get("query.count") == 25, counters
assert counters.get("gmres.solves", 0) > 0, counters
assert counters.get("spmv.calls", 0) > 0, counters
latency = qm["histograms"]["query.latency_seconds"]
assert latency["count"] == 25, latency
for q in ("p50", "p95", "p99"):
    assert latency[q] > 0, latency

for name, want in (("pre_trace", "preprocess"), ("query_trace", "query")):
    trace = json.load(open(f"{work}/{name}.json"))
    events = trace["traceEvents"]
    assert events, f"{name}: no trace events"
    names = {e["name"] for e in events}
    assert want in names, f"{name}: missing span {want!r} in {sorted(names)}"
    assert all(e["ph"] == "X" for e in events), name
print("    telemetry JSON parses; counters, histogram and spans present")
EOF
  rm -rf "$work"
}

smoke_kernel_paths() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== kernel-path smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/model.txt" \
    >"$work/pre.out"
  if ! grep -q "kernel path: compact" "$work/pre.out"; then
    echo "preprocess did not auto-select the compact kernel path:" >&2
    cat "$work/pre.out" >&2
    exit 1
  fi
  # One query per (kernel, threads) combination. The dumps are
  # full-precision (%.17g round-trips doubles exactly), so cmp checks
  # bit-identity of the whole score vector, not a tolerance.
  local kernel threads
  for kernel in compact wide; do
    for threads in 1 4; do
      "$cli" query --model="$work/model.txt" --seed-node=3 \
        --kernel="$kernel" --threads="$threads" \
        --dump-scores="$work/scores_${kernel}_${threads}.txt" >/dev/null
    done
  done
  cmp "$work/scores_compact_1.txt" "$work/scores_wide_1.txt"
  cmp "$work/scores_compact_1.txt" "$work/scores_compact_4.txt"
  cmp "$work/scores_compact_1.txt" "$work/scores_wide_4.txt"
  echo "    compact auto-selected; scores bit-identical across" \
    "--kernel compact/wide and --threads 1/4"
  rm -rf "$work"
}

smoke_crosscheck() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== crosscheck smoke test ==="
  # 1. Healthy path: the Monte-Carlo oracle against the exact (linear-
  # algebra) solve on two example graphs. crosscheck exits non-zero if
  # any per-node difference leaves the MC confidence interval.
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" crosscheck --graph="$work/graph.txt" --seeds=3 --walks=100000 \
    >/dev/null
  "$cli" generate --out="$work/dense.txt" --nodes=200 --edges=3000 \
    --seed=11 >/dev/null
  "$cli" crosscheck --graph="$work/dense.txt" --seeds=2 --walks=100000 \
    >/dev/null
  echo "    MC oracle agrees with the exact solve on both example graphs"

  # 2. Every linear-algebra stage fault-injected: the degradation chain
  # must bottom out in the MC terminal stage and still answer with a
  # bounded-error reply — over the CLI and over serve.
  local faults="ilu0.factor,gmres.stagnate,bicgstab.breakdown,power.stall"
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/model.txt" \
    >/dev/null
  # Seed 5 is not a deadend in this graph: a deadend seed's RWR vector is
  # identically zero, the Schur solve then converges in 0 iterations and
  # the chain never needs to degrade.
  # Both streams: the ranking and "mc terminal stage answered" go to
  # stdout, the "solver chain: ..." hop summary to stderr.
  BEPI_FAULT_INJECT="$faults" "$cli" query --model="$work/model.txt" \
    --graph="$work/graph.txt" --seed-node=5 >"$work/faulted.out" 2>&1
  grep -q "mc -> Converged" "$work/faulted.out"
  grep -q "mc terminal stage answered" "$work/faulted.out"
  # The crosscheck verb itself must also pass in this regime: the oracle
  # walks an independent RNG stream, so MC-vs-MC still validates bounds.
  BEPI_FAULT_INJECT="$faults" "$cli" crosscheck --graph="$work/graph.txt" \
    --seeds=2 --walks=150000 >"$work/faulted_cc.out"
  grep -q "mc" "$work/faulted_cc.out"
  printf '{"op":"query","seed":5}\n' |
    BEPI_FAULT_INJECT="$faults" "$cli" serve --model="$work/model.txt" \
      --graph="$work/graph.txt" >"$work/serve_mc.out" 2>/dev/null ||
    true
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
line = open(f"{work}/serve_mc.out").read().splitlines()[0]
response = json.loads(line)
assert response["ok"], response
assert response["stage"] == "mc", response
assert response["outcome"] == "Converged", response
assert 0.0 < response["residual"] < 0.1, response  # the confidence bound
print("    chain bottomed out in MC over serve: stage=mc, "
      f"bound +/-{response['residual']:.4f}")
EOF
  rm -rf "$work"
}

smoke_topk() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== top-k smoke test ==="
  # 1. Exact mode is bitwise exact: the pruned top-k dump must be byte-
  # identical to sorting a full dense solve (--topk-via=dense), across
  # both kernel paths and thread counts, on a deadend-heavy and a dense
  # example graph. The dumps are full-precision (%.17g round-trips
  # doubles), so cmp checks bit equality, not a tolerance.
  "$cli" generate --out="$work/spoke.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" generate --out="$work/dense.txt" --nodes=200 --edges=3000 \
    --seed=11 >/dev/null
  local name kernel threads
  for name in spoke dense; do
    "$cli" preprocess --graph="$work/$name.txt" --model="$work/$name.model" \
      >/dev/null
    "$cli" query --model="$work/$name.model" --seed-node=3 --top-k=25 \
      --topk-via=dense --dump-topk="$work/${name}_ref.txt" >/dev/null
    for kernel in compact wide; do
      for threads in 1 4; do
        "$cli" query --model="$work/$name.model" --seed-node=3 --top-k=25 \
          --kernel="$kernel" --threads="$threads" \
          --dump-topk="$work/${name}_${kernel}_${threads}.txt" >/dev/null
        cmp "$work/${name}_ref.txt" "$work/${name}_${kernel}_${threads}.txt"
      done
    done
  done
  echo "    exact top-k byte-identical to dense solve + sort across" \
    "--kernel compact/wide and --threads 1/4 on both graphs"

  # 2. Eps mode's per-score bound must be honest: crosscheck --query-eps
  # runs every query in eps mode and fails if any node's deviation from
  # the MC oracle exceeds the reported bound plus the MC half-width.
  "$cli" crosscheck --graph="$work/spoke.txt" --seeds=2 --walks=100000 \
    --query-eps=1e-4 >/dev/null
  echo "    eps-mode per-score bound verified against the MC oracle"

  # 3. A fully faulted chain must still answer a top-k query: the MC
  # terminal stage produces the full vector, the CLI sorts it, and eps
  # mode keeps carrying an explicit per-score bound.
  local faults="ilu0.factor,gmres.stagnate,bicgstab.breakdown,power.stall"
  BEPI_FAULT_INJECT="$faults" "$cli" query --model="$work/spoke.model" \
    --graph="$work/spoke.txt" --seed-node=5 --top-k=10 --eps=1e-3 \
    >"$work/faulted_topk.out" 2>&1
  grep -q "mc -> Converged" "$work/faulted_topk.out"
  grep -q "per-score error bound" "$work/faulted_topk.out"
  echo "    faulted chain still answered top-k with an explicit bound"
  rm -rf "$work"
}

smoke_serve() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== serve smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/model.txt" \
    >/dev/null

  # 1. Bit-identity: the scores a serve session returns must match a
  # one-shot query's full-precision dump exactly (both sides print %.17g,
  # which round-trips doubles, so parsed-float equality is bit equality).
  "$cli" query --model="$work/model.txt" --seed-node=3 \
    --dump-scores="$work/direct.txt" >/dev/null
  printf '{"op":"query","seed":3,"scores":true}\n' |
    "$cli" serve --model="$work/model.txt" >"$work/serve_scores.out"
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
response = json.loads(open(f"{work}/serve_scores.out").read().splitlines()[0])
assert response["ok"] and not response["partial"], response
direct = [float(l) for l in open(f"{work}/direct.txt")]
assert len(response["scores"]) == len(direct) > 0
for i, (a, b) in enumerate(zip(response["scores"], direct)):
    assert a == b, f"score {i} differs: serve={a!r} direct={b!r}"
print("    serve scores bit-identical to one-shot query --dump-scores")
EOF

  # 2. Hostile input + injected protocol faults never kill the process:
  # garbage, an injected corrupted line, an expired deadline and a valid
  # query all get one JSON response line each, and the session exits 0.
  printf '%s\n' \
    'garbage{{{' \
    '{"op":"query","seed":1}' \
    '{"op":"query","id":"dl","seed":1,"deadline_ms":0.0001}' \
    '{"op":"query","id":"ok","seed":1}' |
    "$cli" serve --model="$work/model.txt" \
      --fault-inject=server.parse_garbage:1:1 >"$work/hostile.out"
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
lines = [json.loads(l) for l in open(f"{work}/hostile.out")]
assert len(lines) == 4, lines
errors = [l.get("error") for l in lines]
assert errors.count("parse_error") == 2, errors      # garbage + injected
assert "deadline_exceeded" in errors, errors
final = [l for l in lines if l.get("id") == "ok"]
assert final and final[0]["ok"], lines
print("    garbage, injected faults and a 0.1us deadline all answered;"
      " session survived")
EOF

  # 3. Overload: one slot and a one-deep queue against a 500-request
  # flood must shed load with "overloaded" + retry_after_ms while still
  # answering every line.
  awk 'BEGIN { for (i = 0; i < 500; i++) print "{\"op\":\"query\",\"seed\":1}" }' |
    "$cli" serve --model="$work/model.txt" --slots=1 --max-queue=1 \
      >"$work/flood.out"
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
lines = [json.loads(l) for l in open(f"{work}/flood.out")]
assert len(lines) == 500, len(lines)
shed = [l for l in lines if l.get("error") == "overloaded"]
served = [l for l in lines if l.get("ok")]
assert shed, "500-request flood against slots=1/max-queue=1 shed nothing"
assert all(l["retry_after_ms"] >= 1 for l in shed)
assert served, "flood starved every request"
print(f"    flood: {len(served)} served, {len(shed)} shed with retry hints")
EOF

  # 4. Socket mode: two concurrent clients get valid, identical answers
  # for the same seed; SIGTERM then drains cleanly — exit 0 with the
  # metrics flushed to --metrics-out.
  "$cli" serve --model="$work/model.txt" --socket="$work/serve.sock" \
    --metrics-out="$work/serve_metrics.json" >/dev/null 2>&1 &
  local serve_pid=$!
  local i=0
  while [ ! -S "$work/serve.sock" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "serve socket never appeared" >&2; exit 1; }
    sleep 0.05
  done
  python3 - "$work" <<'EOF'
import json, socket, sys, threading
work = sys.argv[1]
results = [None, None]
def client(slot):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(f"{work}/serve.sock")
    s.sendall(b'{"op":"query","seed":5,"topk":3}\n')
    buf = b""
    while b"\n" not in buf:
        buf += s.recv(4096)
    s.close()
    results[slot] = buf.split(b"\n")[0]
threads = [threading.Thread(target=client, args=(i,)) for i in range(2)]
for t in threads: t.start()
for t in threads: t.join()
parsed = [json.loads(r) for r in results]
for p in parsed:
    assert p["ok"], p
    # Per-request context legitimately varies: wall-clock timings and the
    # server-minted request_id. Everything else — scores included — must
    # be identical.
    p.pop("ms")
    p.pop("timing")
    assert p.pop("request_id").startswith("srv-"), p
assert parsed[0] == parsed[1], results
print("    two concurrent socket clients answered identically")
EOF
  kill -TERM "$serve_pid"
  local drain_status=0
  wait "$serve_pid" || drain_status=$?
  if [ "$drain_status" -ne 0 ]; then
    echo "SIGTERM drain exited with $drain_status (want 0)" >&2
    exit 1
  fi
  python3 -c "
import json, sys
m = json.load(open('$work/serve_metrics.json'))
assert m['counters'].get('server.completed', 0) >= 1, m['counters']
"
  echo "    SIGTERM drained to exit 0; metrics flushed"

  # 5. SIGKILL mid-serve must leave the model file untouched (the server
  # only ever reads it).
  cp "$work/model.txt" "$work/model.before"
  "$cli" serve --model="$work/model.txt" --socket="$work/kill.sock" \
    >/dev/null 2>&1 &
  local kill_pid=$!
  i=0
  while [ ! -S "$work/kill.sock" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "serve socket never appeared" >&2; exit 1; }
    sleep 0.05
  done
  kill -KILL "$kill_pid"
  wait "$kill_pid" 2>/dev/null || true
  cmp "$work/model.txt" "$work/model.before"
  echo "    SIGKILL mid-serve left the model byte-identical"
  rm -rf "$work"
}

smoke_batch_serve() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== batch-serve smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/model.txt" \
    >/dev/null
  # One-shot full-precision references (%.17g round-trips doubles, so
  # parsed-float equality below is bit equality).
  local s
  for s in 3 9; do
    "$cli" query --model="$work/model.txt" --seed-node="$s" \
      --dump-scores="$work/direct_$s.txt" >/dev/null
  done

  # 1. Two-wave interactive session against one serve process: wave 1
  # floods duplicate + distinct seeds into a single batch window (every
  # response must match the one-shot dumps exactly, and the distinct
  # seeds must coalesce); wave 2 repeats the seeds after wave 1 finished,
  # so every answer must come from the score cache with the same bytes.
  python3 - "$work" "$cli" <<'EOF'
import json, subprocess, sys
work, cli = sys.argv[1], sys.argv[2]
direct = {s: [float(l) for l in open(f"{work}/direct_{s}.txt")]
          for s in (3, 9)}
proc = subprocess.Popen(
    [cli, "serve", f"--model={work}/model.txt", "--slots=1",
     "--batch-max=8", "--batch-window-ms=500", "--cache-mb=16"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE,
    stderr=subprocess.DEVNULL, text=True)

def wave(seeds):
    for i, seed in enumerate(seeds):
        proc.stdin.write(json.dumps(
            {"op": "query", "id": i, "seed": seed, "scores": True}) + "\n")
    proc.stdin.flush()
    responses = {}
    for _ in seeds:
        r = json.loads(proc.stdout.readline())
        responses[r["id"]] = r
    for i, seed in enumerate(seeds):
        r = responses[i]
        assert r["ok"] and not r["partial"], r
        assert r["scores"] == direct[seed], f"seed {seed} differs from dump"
    return responses

wave1 = wave([3, 9, 3, 9, 3])
coalesced = [r for r in wave1.values() if r.get("coalesced")]
assert len(coalesced) >= 2, "batch window never coalesced wave 1"
assert all(r["outcome"] == "Converged" for r in wave1.values())

wave2 = wave([3, 9, 3, 9])
assert all(r["stage"] == "cache" for r in wave2.values()), \
    "wave 2 was not answered from the cache"

proc.stdin.write('{"op":"stats","id":"s"}\n')
proc.stdin.flush()
stats = json.loads(proc.stdout.readline())
assert stats["cache_hits"] == 4, stats
assert stats["cache_misses"] >= 2, stats
assert stats["coalesced"] >= 2, stats
proc.stdin.close()
assert proc.wait() == 0
print(f"    wave 1: {len(coalesced)} coalesced responses, all bit-identical"
      f" to dumps; wave 2: 4/4 cache hits; stats counters agree")
EOF

  # 2. A faulted column degrades alone: gmres.stagnate fires once, so one
  # column of the blocked solve stalls and is re-solved through the
  # scalar chain while the rest of the batch stays coalesced. Every
  # response must still be bit-identical to the one-shot dumps.
  python3 - "$work" "$cli" <<'EOF'
import json, subprocess, sys
work, cli = sys.argv[1], sys.argv[2]
direct = {s: [float(l) for l in open(f"{work}/direct_{s}.txt")]
          for s in (3, 9)}
proc = subprocess.Popen(
    [cli, "serve", f"--model={work}/model.txt", "--slots=1",
     "--batch-max=8", "--batch-window-ms=500",
     "--fault-inject=gmres.stagnate:0:1"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE,
    stderr=subprocess.DEVNULL, text=True)
seeds = [3, 9, 3, 9]
for i, seed in enumerate(seeds):
    proc.stdin.write(json.dumps(
        {"op": "query", "id": i, "seed": seed, "scores": True}) + "\n")
proc.stdin.flush()
responses = {}
for _ in seeds:
    r = json.loads(proc.stdout.readline())
    responses[r["id"]] = r
proc.stdin.close()
assert proc.wait() == 0
flags = {r.get("coalesced", False) for r in responses.values()}
assert flags == {True, False}, \
    f"expected a mix of coalesced and retried columns, got {flags}"
for i, seed in enumerate(seeds):
    r = responses[i]
    assert r["ok"] and not r["partial"], r
    assert r["scores"] == direct[seed], f"seed {seed} differs under fault"
print("    faulted column degraded alone (coalesced flags "
      f"{sorted(r.get('coalesced', False) for r in responses.values())}); "
      "all responses bit-identical to dumps")
EOF
  rm -rf "$work"
}

smoke_observability() {
  local cli="$1"
  local work
  work="$(mktemp -d)"
  echo "=== observability smoke test ==="
  "$cli" generate --out="$work/graph.txt" --nodes=400 --edges=1800 \
    --deadends=0.2 --seed=7 >/dev/null
  "$cli" preprocess --graph="$work/graph.txt" --model="$work/model.txt" \
    >/dev/null

  # 1. Flood with client request_ids, scrape mid-flood with the metrics
  # verb, then render the drained --metrics-out snapshot offline with
  # metrics-export. Both expositions must pass a strict text-format parse
  # (every line a well-formed comment or sample, histogram buckets
  # cumulative, +Inf == _count), and the tiny --slow-ms threshold must
  # have pinned a request_id exemplar to the latency histogram and logged
  # slow-query lines carrying the same ids.
  (
    awk 'BEGIN { for (i = 0; i < 200; i++)
      printf "{\"op\":\"query\",\"request_id\":\"flood-%d\",\"seed\":1}\n", i }'
    sleep 1 # metrics answers inline; let the accepted queries finish first
    printf '{"op":"metrics","id":"m"}\n'
  ) | "$cli" serve --model="$work/model.txt" --slots=2 --max-queue=4 \
    --slow-ms=0.000001 --metrics-out="$work/snapshot.json" \
    >"$work/flood.out" 2>"$work/flood.log"
  "$cli" metrics-export --snapshot="$work/snapshot.json" \
    --out="$work/exported.prom" >/dev/null
  grep -q 'slow query: request_id=flood-' "$work/flood.log"
  python3 - "$work" <<'EOF'
import json, re, sys
work = sys.argv[1]

def parse_exposition(text):
    """Strict Prometheus text-format 0.0.4 parse; returns family->type."""
    sample = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? '
        r'(-?[0-9.eE+-]+|NaN|\+Inf|-Inf)'
        r'( # \{[^}]*\} (-?[0-9.eE+-]+|NaN|\+Inf|-Inf)( [0-9.eE+-]+)?)?$')
    families, buckets, counts = {}, {}, {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            families[name] = kind
            continue
        m = sample.match(line)
        assert m, f"malformed exposition line: {line!r}"
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        assert name.startswith("bepi_"), line
        if name.endswith("_bucket"):
            le = re.search(r'le="([^"]+)"', labels).group(1)
            buckets.setdefault(name[:-7], []).append((le, float(value)))
        elif name.endswith("_count"):
            counts[name[:-6]] = float(value)
    for hist, series in buckets.items():
        values = [v for _, v in series]
        assert values == sorted(values), f"{hist} buckets not cumulative"
        assert series[-1][0] == "+Inf", f"{hist} missing +Inf bucket"
        assert series[-1][1] == counts[hist], f"{hist} +Inf != _count"
    return families

lines = [json.loads(l) for l in open(f"{work}/flood.out")]
assert len(lines) == 201, len(lines)
scrape = [l for l in lines if l.get("id") == "m"]
assert scrape and scrape[0]["ok"], "metrics verb got no response"
live = parse_exposition(scrape[0]["metrics"])
assert live.get("bepi_server_latency_seconds") == "histogram", live
for family in ("bepi_server_accepted", "bepi_server_slow_queries",
               "bepi_process_rss_bytes", "bepi_process_open_fds"):
    assert family in live, f"live scrape missing {family}"
# Every query is an offender under --slow-ms=1ns: the exemplar is a
# flood request_id on the latency histogram.
assert re.search(r'_bucket\{le="[^"]+"\} \d+ # \{request_id="flood-\d+"\}',
                 scrape[0]["metrics"]), "no request_id exemplar in scrape"
exported = parse_exposition(open(f"{work}/exported.prom").read())
assert exported.get("bepi_server_latency_seconds") == "histogram", exported
missing = {f for f, k in live.items() if k != "gauge"} - set(exported)
assert not missing, f"metrics-export lost families: {sorted(missing)}"
# Responses echo the client's request_id and carry per-stage timing.
served = [l for l in lines if l.get("ok") and "timing" in l]
assert served, "flood produced no timed responses"
assert all(l["request_id"].startswith("flood-") for l in served)
stages = served[0]["timing"]["stages"]
assert stages and stages[0]["stage"] == "ilu0+gmres", stages
slow_ids = set(re.findall(r"slow query: request_id=(\S+)",
                          open(f"{work}/flood.log").read()))
assert slow_ids & {l["request_id"] for l in served}, "slow log ids differ"
print(f"    flood: {len(served)} timed responses, strict exposition parse "
      f"ok (live + metrics-export), {len(slow_ids)} slow-query log lines")
EOF

  # 2. The acceptance scenario: every linear-algebra stage fault-injected,
  # one request degrades ilu0+gmres -> jacobi+gmres -> bicgstab -> power
  # -> mc. The response's timing must name all five stages, the flight-
  # recorder dump must reconstruct the same hop sequence under the
  # request_id, and the slow-query log must attribute the same request.
  local faults="gmres.stagnate,bicgstab.breakdown,power.stall"
  (
    printf '{"op":"query","request_id":"chain-1","seed":5}\n'
    sleep 2 # the dump verb answers inline; let the query finish first
    printf '{"op":"dump","id":"d"}\n'
  ) | BEPI_FAULT_INJECT="$faults" "$cli" serve --model="$work/model.txt" \
    --graph="$work/graph.txt" --slow-ms=0.000001 \
    >"$work/chain.out" 2>"$work/chain.log"
  grep -q 'slow query: request_id=chain-1' "$work/chain.log"
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
lines = [json.loads(l) for l in open(f"{work}/chain.out")]
expected = ["ilu0+gmres", "jacobi+gmres", "bicgstab", "power", "mc"]
response = [l for l in lines if l.get("request_id") == "chain-1"][0]
assert response["ok"] and response["stage"] == "mc", response
stages = response["timing"]["stages"]
assert [s["stage"] for s in stages] == expected, stages
assert all(s["ns"] >= 0 for s in stages), stages
dump = [l for l in lines if l.get("id") == "d"][0]
hops = [e["args"]["detail"] for e in dump["flightrec"]["traceEvents"]
        if e["name"] == "stage_hop"
        and e["args"]["request_id"] == "chain-1"]
assert hops == expected, hops
print("    5-stage chain: response timing names every stage; flight "
      "recorder reconstructs the hop sequence by request_id")
EOF

  # 3. Watchdog trip auto-dump: a worker stalled by server.exec_stall past
  # --wedge-ms gets cancelled and the rings are persisted to --flight-dump
  # while the wedged request's trail is still in the buffer.
  (
    printf '{"op":"query","request_id":"wedge-1","seed":5}\n'
    sleep 1 # hold the session open so the watchdog patrols pre-drain
  ) | "$cli" serve --model="$work/model.txt" \
    --fault-inject=server.exec_stall:0:1 --watchdog-ms=10 --wedge-ms=50 \
    --flight-dump="$work/wedge_dump.json" \
    >"$work/wedge.out" 2>"$work/wedge.log"
  grep -q 'request_id=wedge-1' "$work/wedge.log"
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
dump = json.load(open(f"{work}/wedge_dump.json"))
events = dump["traceEvents"]
names = {e["name"] for e in events
         if e["args"].get("request_id") == "wedge-1"}
assert "watchdog" in names, sorted(names)
response = json.loads(open(f"{work}/wedge.out").read().splitlines()[0])
assert response["request_id"] == "wedge-1", response
assert response.get("error") in ("cancelled", "deadline_exceeded"), response
print("    watchdog trip auto-dumped a trace naming the wedged request")
EOF

  # 4. Bit-identity: the forensics features on the hot path (slow-query
  # accounting, flight recording, request tracing) must not perturb the
  # answers. Full-precision scores with and without them are compared
  # exactly (%.17g round-trips doubles).
  printf '{"op":"query","seed":3,"scores":true}\n' |
    "$cli" serve --model="$work/model.txt" >"$work/plain.out" 2>/dev/null
  printf '{"op":"query","seed":3,"scores":true}\n' |
    "$cli" serve --model="$work/model.txt" --slow-ms=0.000001 \
      --flight-dump="$work/fr.json" >"$work/instr.out" 2>/dev/null
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
plain = json.loads(open(f"{work}/plain.out").read().splitlines()[0])
instr = json.loads(open(f"{work}/instr.out").read().splitlines()[0])
assert plain["ok"] and instr["ok"]
assert len(plain["scores"]) == len(instr["scores"]) > 0
for i, (a, b) in enumerate(zip(plain["scores"], instr["scores"])):
    assert a == b, f"score {i} differs under instrumentation: {a!r} {b!r}"
print("    scores bit-identical with observability features on and off")
EOF
  rm -rf "$work"
}

bench_artifacts() {
  local build_dir="$1"
  local out="$build_dir/../artifacts"
  mkdir -p "$out"
  echo "=== benchmark artifacts ==="
  # Cheapest sizes only: the artifact's job is to prove the JSON emitters
  # work end to end, not to produce stable timings. The kernel-layer
  # comparison pairs (wide vs compact, serial vs level-scheduled, fused
  # vs unfused) also run at 16384, where the working set leaves L2 and
  # the index-width bandwidth effect is actually visible.
  "$build_dir/bench/bench_kernels" \
    --benchmark_filter='/4096$|/1024$|/512$|^BM_(KernelSpMV|Residual|Trisolve|Ilu0Apply)[A-Za-z]+/16384$' \
    --benchmark_min_time=0.05 \
    --benchmark_out="$out/BENCH_kernels.json" \
    --benchmark_out_format=json >/dev/null
  "$build_dir/bench/bench_fig1_query" --scale=0.05 --queries=3 \
    --json-out="$out/BENCH_fig1_query.json" >/dev/null
  "$build_dir/bench/bench_fig5_scalability" --scale=0.05 --slices=2 \
    --queries=2 --threads=4 --batch=8 \
    --json-out="$out/BENCH_parallel_scaling.json" >/dev/null
  "$build_dir/bench/bench_serve" --scale=0.05 --queries=20 \
    --json-out="$out/BENCH_serve.json" >/dev/null 2>&1
  "$build_dir/bench/bench_batch_serve" --scale=0.05 --queries=16 \
    --repeats=2 --json-out="$out/BENCH_batch_serve.json" >/dev/null 2>&1
  "$build_dir/bench/bench_mc" --scale=0.05 --queries=2 --walks=50000 \
    --json-out="$out/BENCH_mc.json" >/dev/null
  "$build_dir/bench/bench_topk" --scale=0.05 --queries=2 \
    --json-out="$out/BENCH_topk.json" >/dev/null
  # Full-scale queries here: the per-query instrumentation cost is a few
  # microseconds flat, so on toy queries it reads as tens of percent while
  # on real ones it is noise. The <2% gate is only meaningful at scale 1.
  "$build_dir/bench/bench_observability" --scale=1.0 --queries=50 --rounds=9 \
    --json-out="$out/BENCH_observability.json" >/dev/null
  python3 - "$out" <<'EOF'
import json, sys
out = sys.argv[1]
kernels = json.load(open(f"{out}/BENCH_kernels.json"))
assert kernels["benchmarks"], "BENCH_kernels.json has no benchmarks"
fig1 = json.load(open(f"{out}/BENCH_fig1_query.json"))
assert fig1["bench"] == "fig1_query", fig1.get("bench")
results = fig1["results"]
assert results, "BENCH_fig1_query.json has no results"
methods = {r["method"] for r in results}
assert "bepi" in methods, sorted(methods)
serve = json.load(open(f"{out}/BENCH_serve.json"))
assert serve["bench"] == "serve", serve.get("bench")
serve_methods = {r["method"] for r in serve["results"]}
assert "clients=1" in serve_methods and "clients=8" in serve_methods, \
    sorted(serve_methods)
batch = json.load(open(f"{out}/BENCH_batch_serve.json"))
assert batch["bench"] == "batch_serve", batch.get("bench")
brec = batch["results"]
stream = {r["method"]: r["value"] for r in brec
          if r["metric"] == "stream_bytes_per_query"}
widths = [f"k={k}" for k in (1, 2, 4, 8, 16)]
assert all(w in stream for w in widths), sorted(stream)
per_query = [stream[w] for w in widths]
assert per_query == sorted(per_query, reverse=True), \
    f"per-query stream bytes must fall with batch width: {per_query}"
cache = {r["metric"]: r["value"] for r in brec if r["method"] == "cache"}
assert cache["hit_p50_ms"] < cache["cold_p50_ms"], cache
assert cache["p50_speedup"] > 1.5, cache  # >=10x at scale 1; toy graphs
                                          # are protocol-bound
scaling = json.load(open(f"{out}/BENCH_parallel_scaling.json"))
assert scaling["bench"] == "parallel_scaling", scaling.get("bench")
srec = scaling["results"]
assert srec, "BENCH_parallel_scaling.json has no results"
widths = {r["method"] for r in srec}
assert "threads=1" in widths and "threads=4" in widths, sorted(widths)
ident = [r for r in srec if r["metric"] == "bit_identical"]
assert ident and all(r["value"] == 1.0 for r in ident), ident
mc = json.load(open(f"{out}/BENCH_mc.json"))
assert mc["bench"] == "mc", mc.get("bench")
mrec = mc["results"]
assert mrec, "BENCH_mc.json has no results"
in_bound = [r for r in mrec if r["metric"] == "within_bound"]
assert in_bound and all(r["value"] == 1.0 for r in in_bound), in_bound
mc_ident = [r for r in mrec if r["metric"] == "bit_identical"]
assert mc_ident and all(r["value"] == 1.0 for r in mc_ident), mc_ident
topk = json.load(open(f"{out}/BENCH_topk.json"))
assert topk["bench"] == "topk", topk.get("bench")
trec = topk["results"]
assert trec, "BENCH_topk.json has no results"
exact = [r for r in trec if r["metric"] == "exact_match"]
assert exact and all(r["value"] == 1.0 for r in exact), exact
# The byte-reduction floor: at k=1 the pruned back-substitution must
# stream meaningfully fewer bytes than the dense baseline on every
# dataset (observed 1.6x-44x at this scale; real graphs are higher).
redux = [r for r in trec
         if r["method"] == "k=1" and r["metric"] == "byte_reduction"]
assert redux and all(r["value"] >= 1.2 for r in redux), redux
warm = [r for r in trec if r["metric"] == "iterations_saved_frac"]
assert warm and all(r["value"] >= 0.0 for r in warm), warm
obs = json.load(open(f"{out}/BENCH_observability.json"))
assert obs["bench"] == "observability", obs.get("bench")
orec = obs["results"]
obs_ident = [r for r in orec if r["metric"] == "bit_identical"]
assert obs_ident and all(r["value"] == 1.0 for r in obs_ident), obs_ident
overhead = [r for r in orec if r["metric"] == "overhead_percent"]
assert overhead and all(r["value"] < 2.0 for r in overhead), overhead
print(f"    {len(kernels['benchmarks'])} kernel benchmarks, "
      f"{len(results)} fig1 records, {len(srec)} scaling records, "
      f"{len(mrec)} mc records, {len(trec)} topk records, "
      f"{len(orec)} observability records")
EOF
}

for config in "${configs[@]}"; do
  case "$config" in
    default) sanitize="" ;;
    address | undefined | thread) sanitize="$config" ;;
    *)
      echo "unknown configuration: $config" \
        "(want default|address|undefined|thread)" >&2
      exit 2
      ;;
  esac
  build_dir="build-ci/$config"
  echo "=== [$config] configure ==="
  cmake -B "$build_dir" -S . -DBEPI_SANITIZE="$sanitize" >/dev/null
  if [ "$config" = thread ]; then
    # TSan pass: the telemetry tests (sharded registry, per-thread trace
    # buffers), the parallel layer (work-stealing pool, TaskGroup,
    # batched queries) and the level-scheduled kernel layer (parallel
    # triangular solves, ILU(0) apply) are the concurrency-bearing
    # surface.
    echo "=== [$config] build (test_metrics, test_trace, test_parallel," \
      "test_trisolve, test_kernel, test_cancel, test_mc, test_topk," \
      "test_server, test_cache, test_flightrec, test_promtext) ==="
    cmake --build "$build_dir" -j "$jobs" \
      --target test_metrics test_trace test_parallel test_trisolve \
      test_kernel test_cancel test_mc test_topk test_server test_cache \
      test_flightrec test_promtext
    echo "=== [$config] test ==="
    "$build_dir/tests/test_metrics"
    "$build_dir/tests/test_trace"
    "$build_dir/tests/test_parallel"
    "$build_dir/tests/test_trisolve"
    "$build_dir/tests/test_kernel"
    "$build_dir/tests/test_cancel"
    "$build_dir/tests/test_mc"
    "$build_dir/tests/test_topk"
    "$build_dir/tests/test_server"
    "$build_dir/tests/test_cache"
    "$build_dir/tests/test_flightrec"
    "$build_dir/tests/test_promtext"
    continue
  fi
  echo "=== [$config] build ==="
  cmake --build "$build_dir" -j "$jobs"
  echo "=== [$config] test ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
  if [ "$config" = default ]; then
    smoke_kill_resume "$build_dir/tools/bepi_cli"
    smoke_telemetry "$build_dir/tools/bepi_cli"
    smoke_kernel_paths "$build_dir/tools/bepi_cli"
    smoke_serve "$build_dir/tools/bepi_cli"
    smoke_batch_serve "$build_dir/tools/bepi_cli"
    smoke_crosscheck "$build_dir/tools/bepi_cli"
    smoke_topk "$build_dir/tools/bepi_cli"
    smoke_observability "$build_dir/tools/bepi_cli"
    bench_artifacts "$build_dir"
    echo "=== docs cross-check ==="
    tools/check_docs.sh "$build_dir/tools/bepi_cli"
  fi
done

echo "=== all configurations passed ==="
