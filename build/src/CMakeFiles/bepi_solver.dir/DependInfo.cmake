
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/arnoldi.cpp" "src/CMakeFiles/bepi_solver.dir/solver/arnoldi.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/arnoldi.cpp.o.d"
  "/root/repo/src/solver/bicgstab.cpp" "src/CMakeFiles/bepi_solver.dir/solver/bicgstab.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/bicgstab.cpp.o.d"
  "/root/repo/src/solver/dense_lu.cpp" "src/CMakeFiles/bepi_solver.dir/solver/dense_lu.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/dense_lu.cpp.o.d"
  "/root/repo/src/solver/gmres.cpp" "src/CMakeFiles/bepi_solver.dir/solver/gmres.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/gmres.cpp.o.d"
  "/root/repo/src/solver/ilu0.cpp" "src/CMakeFiles/bepi_solver.dir/solver/ilu0.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/ilu0.cpp.o.d"
  "/root/repo/src/solver/operator.cpp" "src/CMakeFiles/bepi_solver.dir/solver/operator.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/operator.cpp.o.d"
  "/root/repo/src/solver/power.cpp" "src/CMakeFiles/bepi_solver.dir/solver/power.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/power.cpp.o.d"
  "/root/repo/src/solver/sparse_lu.cpp" "src/CMakeFiles/bepi_solver.dir/solver/sparse_lu.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/sparse_lu.cpp.o.d"
  "/root/repo/src/solver/spectral.cpp" "src/CMakeFiles/bepi_solver.dir/solver/spectral.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/spectral.cpp.o.d"
  "/root/repo/src/solver/trisolve.cpp" "src/CMakeFiles/bepi_solver.dir/solver/trisolve.cpp.o" "gcc" "src/CMakeFiles/bepi_solver.dir/solver/trisolve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bepi_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bepi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
