# Empty dependencies file for bepi_solver.
# This may be replaced when dependencies are built.
