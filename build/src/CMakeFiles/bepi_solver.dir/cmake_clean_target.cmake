file(REMOVE_RECURSE
  "libbepi_solver.a"
)
