file(REMOVE_RECURSE
  "CMakeFiles/bepi_solver.dir/solver/arnoldi.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/arnoldi.cpp.o.d"
  "CMakeFiles/bepi_solver.dir/solver/bicgstab.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/bicgstab.cpp.o.d"
  "CMakeFiles/bepi_solver.dir/solver/dense_lu.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/dense_lu.cpp.o.d"
  "CMakeFiles/bepi_solver.dir/solver/gmres.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/gmres.cpp.o.d"
  "CMakeFiles/bepi_solver.dir/solver/ilu0.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/ilu0.cpp.o.d"
  "CMakeFiles/bepi_solver.dir/solver/operator.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/operator.cpp.o.d"
  "CMakeFiles/bepi_solver.dir/solver/power.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/power.cpp.o.d"
  "CMakeFiles/bepi_solver.dir/solver/sparse_lu.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/sparse_lu.cpp.o.d"
  "CMakeFiles/bepi_solver.dir/solver/spectral.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/spectral.cpp.o.d"
  "CMakeFiles/bepi_solver.dir/solver/trisolve.cpp.o"
  "CMakeFiles/bepi_solver.dir/solver/trisolve.cpp.o.d"
  "libbepi_solver.a"
  "libbepi_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bepi_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
