# Empty compiler generated dependencies file for bepi_common.
# This may be replaced when dependencies are built.
