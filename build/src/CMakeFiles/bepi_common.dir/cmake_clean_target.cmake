file(REMOVE_RECURSE
  "libbepi_common.a"
)
