file(REMOVE_RECURSE
  "CMakeFiles/bepi_common.dir/common/flags.cpp.o"
  "CMakeFiles/bepi_common.dir/common/flags.cpp.o.d"
  "CMakeFiles/bepi_common.dir/common/log.cpp.o"
  "CMakeFiles/bepi_common.dir/common/log.cpp.o.d"
  "CMakeFiles/bepi_common.dir/common/rng.cpp.o"
  "CMakeFiles/bepi_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/bepi_common.dir/common/status.cpp.o"
  "CMakeFiles/bepi_common.dir/common/status.cpp.o.d"
  "CMakeFiles/bepi_common.dir/common/table.cpp.o"
  "CMakeFiles/bepi_common.dir/common/table.cpp.o.d"
  "libbepi_common.a"
  "libbepi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bepi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
