file(REMOVE_RECURSE
  "CMakeFiles/bepi_graph.dir/graph/components.cpp.o"
  "CMakeFiles/bepi_graph.dir/graph/components.cpp.o.d"
  "CMakeFiles/bepi_graph.dir/graph/deadend.cpp.o"
  "CMakeFiles/bepi_graph.dir/graph/deadend.cpp.o.d"
  "CMakeFiles/bepi_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/bepi_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/bepi_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/bepi_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/bepi_graph.dir/graph/io.cpp.o"
  "CMakeFiles/bepi_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/bepi_graph.dir/graph/reorder.cpp.o"
  "CMakeFiles/bepi_graph.dir/graph/reorder.cpp.o.d"
  "CMakeFiles/bepi_graph.dir/graph/slashburn.cpp.o"
  "CMakeFiles/bepi_graph.dir/graph/slashburn.cpp.o.d"
  "CMakeFiles/bepi_graph.dir/graph/stats.cpp.o"
  "CMakeFiles/bepi_graph.dir/graph/stats.cpp.o.d"
  "libbepi_graph.a"
  "libbepi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bepi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
