file(REMOVE_RECURSE
  "libbepi_graph.a"
)
