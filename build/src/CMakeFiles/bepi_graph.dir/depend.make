# Empty dependencies file for bepi_graph.
# This may be replaced when dependencies are built.
