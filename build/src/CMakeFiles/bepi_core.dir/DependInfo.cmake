
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/approx.cpp" "src/CMakeFiles/bepi_core.dir/core/approx.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/approx.cpp.o.d"
  "/root/repo/src/core/bear.cpp" "src/CMakeFiles/bepi_core.dir/core/bear.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/bear.cpp.o.d"
  "/root/repo/src/core/bepi.cpp" "src/CMakeFiles/bepi_core.dir/core/bepi.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/bepi.cpp.o.d"
  "/root/repo/src/core/budget.cpp" "src/CMakeFiles/bepi_core.dir/core/budget.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/budget.cpp.o.d"
  "/root/repo/src/core/datasets.cpp" "src/CMakeFiles/bepi_core.dir/core/datasets.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/datasets.cpp.o.d"
  "/root/repo/src/core/decomposition.cpp" "src/CMakeFiles/bepi_core.dir/core/decomposition.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/decomposition.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/CMakeFiles/bepi_core.dir/core/exact.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/exact.cpp.o.d"
  "/root/repo/src/core/iterative.cpp" "src/CMakeFiles/bepi_core.dir/core/iterative.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/iterative.cpp.o.d"
  "/root/repo/src/core/lu_rwr.cpp" "src/CMakeFiles/bepi_core.dir/core/lu_rwr.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/lu_rwr.cpp.o.d"
  "/root/repo/src/core/nblin.cpp" "src/CMakeFiles/bepi_core.dir/core/nblin.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/nblin.cpp.o.d"
  "/root/repo/src/core/rwr.cpp" "src/CMakeFiles/bepi_core.dir/core/rwr.cpp.o" "gcc" "src/CMakeFiles/bepi_core.dir/core/rwr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bepi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bepi_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bepi_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bepi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
