file(REMOVE_RECURSE
  "CMakeFiles/bepi_core.dir/core/approx.cpp.o"
  "CMakeFiles/bepi_core.dir/core/approx.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/bear.cpp.o"
  "CMakeFiles/bepi_core.dir/core/bear.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/bepi.cpp.o"
  "CMakeFiles/bepi_core.dir/core/bepi.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/budget.cpp.o"
  "CMakeFiles/bepi_core.dir/core/budget.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/datasets.cpp.o"
  "CMakeFiles/bepi_core.dir/core/datasets.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/decomposition.cpp.o"
  "CMakeFiles/bepi_core.dir/core/decomposition.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/exact.cpp.o"
  "CMakeFiles/bepi_core.dir/core/exact.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/iterative.cpp.o"
  "CMakeFiles/bepi_core.dir/core/iterative.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/lu_rwr.cpp.o"
  "CMakeFiles/bepi_core.dir/core/lu_rwr.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/nblin.cpp.o"
  "CMakeFiles/bepi_core.dir/core/nblin.cpp.o.d"
  "CMakeFiles/bepi_core.dir/core/rwr.cpp.o"
  "CMakeFiles/bepi_core.dir/core/rwr.cpp.o.d"
  "libbepi_core.a"
  "libbepi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bepi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
