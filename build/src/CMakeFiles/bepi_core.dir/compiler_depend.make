# Empty compiler generated dependencies file for bepi_core.
# This may be replaced when dependencies are built.
