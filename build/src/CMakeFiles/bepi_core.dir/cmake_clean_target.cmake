file(REMOVE_RECURSE
  "libbepi_core.a"
)
