file(REMOVE_RECURSE
  "libbepi_sparse.a"
)
