file(REMOVE_RECURSE
  "CMakeFiles/bepi_sparse.dir/sparse/coo.cpp.o"
  "CMakeFiles/bepi_sparse.dir/sparse/coo.cpp.o.d"
  "CMakeFiles/bepi_sparse.dir/sparse/csc.cpp.o"
  "CMakeFiles/bepi_sparse.dir/sparse/csc.cpp.o.d"
  "CMakeFiles/bepi_sparse.dir/sparse/csr.cpp.o"
  "CMakeFiles/bepi_sparse.dir/sparse/csr.cpp.o.d"
  "CMakeFiles/bepi_sparse.dir/sparse/dense.cpp.o"
  "CMakeFiles/bepi_sparse.dir/sparse/dense.cpp.o.d"
  "CMakeFiles/bepi_sparse.dir/sparse/io.cpp.o"
  "CMakeFiles/bepi_sparse.dir/sparse/io.cpp.o.d"
  "CMakeFiles/bepi_sparse.dir/sparse/permute.cpp.o"
  "CMakeFiles/bepi_sparse.dir/sparse/permute.cpp.o.d"
  "CMakeFiles/bepi_sparse.dir/sparse/spgemm.cpp.o"
  "CMakeFiles/bepi_sparse.dir/sparse/spgemm.cpp.o.d"
  "libbepi_sparse.a"
  "libbepi_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bepi_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
