# Empty compiler generated dependencies file for bepi_sparse.
# This may be replaced when dependencies are built.
