
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cpp" "src/CMakeFiles/bepi_sparse.dir/sparse/coo.cpp.o" "gcc" "src/CMakeFiles/bepi_sparse.dir/sparse/coo.cpp.o.d"
  "/root/repo/src/sparse/csc.cpp" "src/CMakeFiles/bepi_sparse.dir/sparse/csc.cpp.o" "gcc" "src/CMakeFiles/bepi_sparse.dir/sparse/csc.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/bepi_sparse.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/bepi_sparse.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/CMakeFiles/bepi_sparse.dir/sparse/dense.cpp.o" "gcc" "src/CMakeFiles/bepi_sparse.dir/sparse/dense.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/CMakeFiles/bepi_sparse.dir/sparse/io.cpp.o" "gcc" "src/CMakeFiles/bepi_sparse.dir/sparse/io.cpp.o.d"
  "/root/repo/src/sparse/permute.cpp" "src/CMakeFiles/bepi_sparse.dir/sparse/permute.cpp.o" "gcc" "src/CMakeFiles/bepi_sparse.dir/sparse/permute.cpp.o.d"
  "/root/repo/src/sparse/spgemm.cpp" "src/CMakeFiles/bepi_sparse.dir/sparse/spgemm.cpp.o" "gcc" "src/CMakeFiles/bepi_sparse.dir/sparse/spgemm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bepi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
