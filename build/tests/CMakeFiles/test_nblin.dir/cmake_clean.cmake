file(REMOVE_RECURSE
  "CMakeFiles/test_nblin.dir/test_nblin.cpp.o"
  "CMakeFiles/test_nblin.dir/test_nblin.cpp.o.d"
  "test_nblin"
  "test_nblin.pdb"
  "test_nblin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nblin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
