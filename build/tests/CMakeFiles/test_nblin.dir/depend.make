# Empty dependencies file for test_nblin.
# This may be replaced when dependencies are built.
