# Empty dependencies file for test_sparse_io.
# This may be replaced when dependencies are built.
