# Empty compiler generated dependencies file for test_trisolve.
# This may be replaced when dependencies are built.
