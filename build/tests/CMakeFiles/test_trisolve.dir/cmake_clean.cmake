file(REMOVE_RECURSE
  "CMakeFiles/test_trisolve.dir/test_trisolve.cpp.o"
  "CMakeFiles/test_trisolve.dir/test_trisolve.cpp.o.d"
  "test_trisolve"
  "test_trisolve.pdb"
  "test_trisolve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trisolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
