file(REMOVE_RECURSE
  "CMakeFiles/test_ilu0.dir/test_ilu0.cpp.o"
  "CMakeFiles/test_ilu0.dir/test_ilu0.cpp.o.d"
  "test_ilu0"
  "test_ilu0.pdb"
  "test_ilu0[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ilu0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
