# Empty dependencies file for test_ilu0.
# This may be replaced when dependencies are built.
