# Empty dependencies file for test_bepi.
# This may be replaced when dependencies are built.
