file(REMOVE_RECURSE
  "CMakeFiles/test_bepi.dir/test_bepi.cpp.o"
  "CMakeFiles/test_bepi.dir/test_bepi.cpp.o.d"
  "test_bepi"
  "test_bepi.pdb"
  "test_bepi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bepi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
