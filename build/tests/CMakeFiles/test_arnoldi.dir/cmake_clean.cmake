file(REMOVE_RECURSE
  "CMakeFiles/test_arnoldi.dir/test_arnoldi.cpp.o"
  "CMakeFiles/test_arnoldi.dir/test_arnoldi.cpp.o.d"
  "test_arnoldi"
  "test_arnoldi.pdb"
  "test_arnoldi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arnoldi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
