# Empty compiler generated dependencies file for test_arnoldi.
# This may be replaced when dependencies are built.
