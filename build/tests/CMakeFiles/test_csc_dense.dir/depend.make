# Empty dependencies file for test_csc_dense.
# This may be replaced when dependencies are built.
