file(REMOVE_RECURSE
  "CMakeFiles/test_csc_dense.dir/test_csc_dense.cpp.o"
  "CMakeFiles/test_csc_dense.dir/test_csc_dense.cpp.o.d"
  "test_csc_dense"
  "test_csc_dense.pdb"
  "test_csc_dense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csc_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
