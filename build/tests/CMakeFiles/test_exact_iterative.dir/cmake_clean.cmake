file(REMOVE_RECURSE
  "CMakeFiles/test_exact_iterative.dir/test_exact_iterative.cpp.o"
  "CMakeFiles/test_exact_iterative.dir/test_exact_iterative.cpp.o.d"
  "test_exact_iterative"
  "test_exact_iterative.pdb"
  "test_exact_iterative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
