# Empty dependencies file for test_slashburn.
# This may be replaced when dependencies are built.
