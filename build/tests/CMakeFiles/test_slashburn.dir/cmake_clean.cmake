file(REMOVE_RECURSE
  "CMakeFiles/test_slashburn.dir/test_slashburn.cpp.o"
  "CMakeFiles/test_slashburn.dir/test_slashburn.cpp.o.d"
  "test_slashburn"
  "test_slashburn.pdb"
  "test_slashburn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slashburn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
