file(REMOVE_RECURSE
  "CMakeFiles/test_rwr_core.dir/test_rwr_core.cpp.o"
  "CMakeFiles/test_rwr_core.dir/test_rwr_core.cpp.o.d"
  "test_rwr_core"
  "test_rwr_core.pdb"
  "test_rwr_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rwr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
