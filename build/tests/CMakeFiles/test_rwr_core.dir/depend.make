# Empty dependencies file for test_rwr_core.
# This may be replaced when dependencies are built.
