# Empty dependencies file for test_bear_lu.
# This may be replaced when dependencies are built.
