file(REMOVE_RECURSE
  "CMakeFiles/test_bear_lu.dir/test_bear_lu.cpp.o"
  "CMakeFiles/test_bear_lu.dir/test_bear_lu.cpp.o.d"
  "test_bear_lu"
  "test_bear_lu.pdb"
  "test_bear_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bear_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
