file(REMOVE_RECURSE
  "CMakeFiles/test_accuracy_bound.dir/test_accuracy_bound.cpp.o"
  "CMakeFiles/test_accuracy_bound.dir/test_accuracy_bound.cpp.o.d"
  "test_accuracy_bound"
  "test_accuracy_bound.pdb"
  "test_accuracy_bound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accuracy_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
