# Empty compiler generated dependencies file for test_accuracy_bound.
# This may be replaced when dependencies are built.
