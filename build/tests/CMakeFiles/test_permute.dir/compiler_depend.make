# Empty compiler generated dependencies file for test_permute.
# This may be replaced when dependencies are built.
