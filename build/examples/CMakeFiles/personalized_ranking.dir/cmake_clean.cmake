file(REMOVE_RECURSE
  "CMakeFiles/personalized_ranking.dir/personalized_ranking.cpp.o"
  "CMakeFiles/personalized_ranking.dir/personalized_ranking.cpp.o.d"
  "personalized_ranking"
  "personalized_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalized_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
