# Empty dependencies file for personalized_ranking.
# This may be replaced when dependencies are built.
