# Empty dependencies file for batch_update.
# This may be replaced when dependencies are built.
