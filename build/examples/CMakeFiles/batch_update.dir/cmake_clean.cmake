file(REMOVE_RECURSE
  "CMakeFiles/batch_update.dir/batch_update.cpp.o"
  "CMakeFiles/batch_update.dir/batch_update.cpp.o.d"
  "batch_update"
  "batch_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
