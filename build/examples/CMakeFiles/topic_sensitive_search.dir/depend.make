# Empty dependencies file for topic_sensitive_search.
# This may be replaced when dependencies are built.
