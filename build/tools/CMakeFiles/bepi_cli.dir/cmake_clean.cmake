file(REMOVE_RECURSE
  "CMakeFiles/bepi_cli.dir/bepi_cli.cpp.o"
  "CMakeFiles/bepi_cli.dir/bepi_cli.cpp.o.d"
  "bepi_cli"
  "bepi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bepi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
