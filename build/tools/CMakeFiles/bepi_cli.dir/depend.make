# Empty dependencies file for bepi_cli.
# This may be replaced when dependencies are built.
