file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_reordering.dir/bench_fig3_reordering.cpp.o"
  "CMakeFiles/bench_fig3_reordering.dir/bench_fig3_reordering.cpp.o.d"
  "bench_fig3_reordering"
  "bench_fig3_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
