# Empty dependencies file for bench_fig8_hub_ratio.
# This may be replaced when dependencies are built.
