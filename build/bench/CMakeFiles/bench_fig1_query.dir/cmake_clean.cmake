file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_query.dir/bench_fig1_query.cpp.o"
  "CMakeFiles/bench_fig1_query.dir/bench_fig1_query.cpp.o.d"
  "bench_fig1_query"
  "bench_fig1_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
