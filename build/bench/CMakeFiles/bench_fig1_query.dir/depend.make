# Empty dependencies file for bench_fig1_query.
# This may be replaced when dependencies are built.
