# Empty dependencies file for bench_fig7_eigenvalues.
# This may be replaced when dependencies are built.
