# Empty dependencies file for bench_fig1_preprocessing.
# This may be replaced when dependencies are built.
