file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preconditioner.dir/bench_ablation_preconditioner.cpp.o"
  "CMakeFiles/bench_ablation_preconditioner.dir/bench_ablation_preconditioner.cpp.o.d"
  "bench_ablation_preconditioner"
  "bench_ablation_preconditioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preconditioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
