# Empty compiler generated dependencies file for bench_fig4_schur_tradeoff.
# This may be replaced when dependencies are built.
