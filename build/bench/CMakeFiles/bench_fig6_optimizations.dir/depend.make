# Empty dependencies file for bench_fig6_optimizations.
# This may be replaced when dependencies are built.
