file(REMOVE_RECURSE
  "CMakeFiles/bench_approx_tradeoff.dir/bench_approx_tradeoff.cpp.o"
  "CMakeFiles/bench_approx_tradeoff.dir/bench_approx_tradeoff.cpp.o.d"
  "bench_approx_tradeoff"
  "bench_approx_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
