# Empty dependencies file for bench_approx_tradeoff.
# This may be replaced when dependencies are built.
