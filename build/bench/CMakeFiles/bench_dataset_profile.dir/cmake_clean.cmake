file(REMOVE_RECURSE
  "CMakeFiles/bench_dataset_profile.dir/bench_dataset_profile.cpp.o"
  "CMakeFiles/bench_dataset_profile.dir/bench_dataset_profile.cpp.o.d"
  "bench_dataset_profile"
  "bench_dataset_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
