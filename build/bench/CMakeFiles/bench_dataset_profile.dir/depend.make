# Empty dependencies file for bench_dataset_profile.
# This may be replaced when dependencies are built.
